#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "detector/generator.hpp"
#include "dist/communicator.hpp"
#include "dist/gradient_sync.hpp"
#include "gnn/interaction_gnn.hpp"
#include "nn/optimizer.hpp"
#include "nn/scheduler.hpp"
#include "sampling/matrix_shadow.hpp"
#include "sampling/shadow.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace trkx {

/// An Interaction GNN plus its parameter store — one trainable replica.
struct GnnModel {
  IgnnConfig config;
  ParameterStore store;
  std::unique_ptr<InteractionGnn> gnn;

  GnnModel(const IgnnConfig& config, std::uint64_t seed);
};

/// Which ShaDow implementation drives minibatch training — the paper's
/// Figure 3/4 comparison axis.
enum class SamplerKind {
  kReference,   ///< Algorithm 2, one batch at a time ("PyG ShaDow" stand-in)
  kMatrixBulk,  ///< matrix-based bulk sampling (this paper's contribution)
};

/// Hyperparameters shared by every GNN training mode.
struct GnnTrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 256;  ///< global batch (vertices); 256/P per rank
  ShadowConfig shadow{};         ///< paper defaults d=3, s=6
  std::size_t bulk_k = 4;        ///< minibatches per bulk sampling call (k)
  float lr = 1e-3f;
  float pos_weight = 0.0f;       ///< 0 = auto from label imbalance
  float grad_clip = 5.0f;
  std::uint64_t seed = 3;
  /// Full-graph mode: events with more edges than this are skipped, the
  /// paper's GPU-memory-wall behaviour (Section III-B).
  std::size_t max_edges = std::numeric_limits<std::size_t>::max();
  /// Alternative memory-wall formulation: skip events whose estimated
  /// training activation footprint (ignn_activation_estimate × 4 bytes ×
  /// ~3 for gradients/workspace) exceeds this simulated device memory.
  /// 0 disables. Both limits apply when set.
  std::size_t memory_budget_bytes = 0;
  SyncStrategy sync = SyncStrategy::kCoalesced;
  /// Sampler/trainer overlap: the producer task samples and gathers up to
  /// this many work units (one batch for the reference sampler, one
  /// bulk-k chunk for the matrix sampler) ahead of the training step.
  /// 0 = fully serial (sample → train per unit, the pre-pipeline
  /// behaviour). Sampling randomness is keyed per (rank, epoch, event,
  /// batch), so any depth produces bit-identical training trajectories.
  std::size_t prefetch_depth = 2;
  /// Producer threads backing the prefetch pipeline (per rank). One
  /// thread is enough to hide the sample phase behind forward/backward;
  /// see README "Thread budget" before raising it.
  std::size_t prefetch_threads = 1;
  bool evaluate_every_epoch = true;
  float eval_threshold = 0.5f;
  /// Optional learning-rate schedule, applied per optimizer step (shared
  /// across DDP ranks). Null = constant config.lr.
  std::shared_ptr<const LrScheduler> scheduler;
  /// Early stopping on validation F1 after this many non-improving
  /// epochs; 0 disables. Requires evaluate_every_epoch. In DDP the
  /// rank-0 decision is broadcast so all ranks stop together.
  std::size_t early_stop_patience = 0;
  /// Keep a snapshot of the weights at the best validation F1 and restore
  /// it when training ends (model selection). Requires
  /// evaluate_every_epoch; in DDP the rank-0 decision is shared.
  bool keep_best_weights = false;
  /// Directory for training checkpoints (created if missing); "" disables
  /// checkpointing. Writes go through the atomic-rename helper in
  /// pipeline/checkpoint.hpp, so an interrupted write can never corrupt
  /// an existing checkpoint.
  std::string checkpoint_dir;
  /// Write a checkpoint every N completed epochs (>= 1). Survivors of a
  /// collective timeout additionally write an emergency checkpoint at the
  /// last completed epoch boundary regardless of this cadence.
  std::size_t checkpoint_every = 1;
  /// Resume from the newest valid checkpoint in checkpoint_dir (no-op
  /// when none exists). The checkpointed RNG cursor plus the per-(rank,
  /// epoch, event, batch) sampling streams make the resumed trajectory
  /// bit-identical to the uninterrupted run. A checkpoint written under a
  /// different run configuration is rejected with CheckpointError.
  bool resume = false;
};

/// One epoch of bookkeeping: loss, validation edge metrics (Figure 4), and
/// the sampling/training/all-reduce time split (Figure 3).
struct EpochRecord {
  double train_loss = 0.0;
  BinaryMetrics val;
  PhaseTimers timers;
  double wall_seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochRecord> epochs;
  std::size_t skipped_graphs = 0;  ///< full-graph mode only
  double total_seconds = 0.0;
  CommStats comm;  ///< DDP modes only
  /// Epoch whose weights the model ended with (last epoch unless
  /// keep_best_weights selected an earlier one).
  std::size_t selected_epoch = 0;

  /// Sum of a timer bucket over all epochs.
  double total_phase(const std::string& phase) const;
  const EpochRecord& last() const;
};

/// Edge precision/recall of full-graph inference over `events`.
/// Per-event predictions are independent, so events are scored in
/// parallel on a ThreadPool of `threads` workers (0 = one per event,
/// capped at the hardware concurrency; 1 = serial) and the per-event
/// counts merged in event order — the result is identical for any thread
/// count.
BinaryMetrics evaluate_edges(const GnnModel& model,
                             const std::vector<Event>& events,
                             float threshold = 0.5f,
                             std::size_t threads = 0);

/// The shard of a global minibatch owned by `rank` of `size`: a balanced
/// contiguous partition (first n mod size ranks get one extra element).
/// Shards exactly partition the batch; when the batch has fewer elements
/// than there are ranks, trailing ranks receive empty shards.
std::vector<std::uint32_t> shard_batch(const std::vector<std::uint32_t>& batch,
                                       int rank, int size);

/// Mean BCE pos_weight implied by the label imbalance of `events`.
float auto_pos_weight(const std::vector<Event>& events);

/// Estimated bytes of device memory a full-graph training step on `event`
/// would need (activations + gradient/workspace overhead) — the quantity
/// the paper's memory wall compares against GPU capacity.
std::size_t full_graph_memory_estimate(const IgnnConfig& config,
                                       const Event& event);

/// True if the event fits the config's memory limits for full-graph mode.
bool fits_memory_budget(const GnnTrainConfig& config, const IgnnConfig& gnn,
                        const Event& event);

/// Full-graph training: one gradient step per event graph per epoch, the
/// original Exa.TrkX regime. Graphs with more than config.max_edges edges
/// are skipped (counted in TrainResult::skipped_graphs).
TrainResult train_full_graph(GnnModel& model, const std::vector<Event>& train,
                             const std::vector<Event>& val,
                             const GnnTrainConfig& config);

/// Single-process ShaDow minibatch training with the chosen sampler.
TrainResult train_shadow(GnnModel& model, const std::vector<Event>& train,
                         const std::vector<Event>& val,
                         const GnnTrainConfig& config, SamplerKind sampler);

/// Distributed-data-parallel ShaDow training over `runtime.size()` ranks:
/// each global minibatch is sharded 1/P per rank; gradients are averaged
/// with config.sync after every step. On return `model` holds the rank-0
/// replica (all replicas remain bitwise identical).
TrainResult train_shadow_ddp(GnnModel& model, const std::vector<Event>& train,
                             const std::vector<Event>& val,
                             const GnnTrainConfig& config,
                             DistRuntime& runtime, SamplerKind sampler);

}  // namespace trkx
