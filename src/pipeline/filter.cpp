#include "pipeline/filter.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace trkx {

FilterModel::FilterModel(std::size_t node_feature_dim,
                         std::size_t edge_feature_dim,
                         const FilterConfig& config)
    : config_(config), rng_(config.seed) {
  MlpConfig mlp;
  mlp.input_dim = 2 * node_feature_dim + edge_feature_dim;
  mlp.hidden_dim = config.hidden_dim;
  mlp.output_dim = 1;
  mlp.num_hidden = config.num_hidden;
  mlp.hidden_activation = Activation::kRelu;
  mlp.output_activation = Activation::kNone;
  mlp.layer_norm = true;
  Rng init_rng = rng_.split();
  mlp_ = std::make_unique<Mlp>(store_, "filter", mlp, init_rng);
}

Matrix FilterModel::edge_inputs(const Event& event) const {
  const Matrix x_src =
      row_gather(event.node_features, event.graph.src_indices());
  const Matrix x_dst =
      row_gather(event.node_features, event.graph.dst_indices());
  return concat_cols({&x_src, &x_dst, &event.edge_features});
}

std::vector<float> FilterModel::score(const Event& event) const {
  if (event.graph.num_edges() == 0) return {};
  TapeContext ctx;
  Var logits = mlp_->forward(ctx, ctx.constant(edge_inputs(event)));
  Var probs = ctx.tape().sigmoid(logits);
  std::vector<float> out(probs.rows());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = probs.value()(i, 0);
  return out;
}

std::vector<double> FilterModel::train(const std::vector<Event>& events) {
  TRKX_TRACE_SPAN("filter.train", "pipeline");
  metrics().counter("pipeline.filter_train.events").add(1);
  TRKX_CHECK(!events.empty());
  // Auto pos_weight from global imbalance: fakes dominate, so weight
  // positives up to keep recall.
  float pos_weight = config_.pos_weight;
  if (pos_weight <= 0.0f) {
    std::size_t pos = 0, total = 0;
    for (const Event& e : events) {
      for (char l : e.edge_labels) pos += (l != 0);
      total += e.edge_labels.size();
    }
    pos_weight = pos == 0 ? 1.0f
                          : static_cast<float>(total - pos) /
                                static_cast<float>(std::max<std::size_t>(pos, 1));
    pos_weight = std::clamp(pos_weight, 1.0f, 20.0f);
  }

  Adam opt(store_, AdamOptions{.lr = config_.lr});
  std::vector<double> epoch_loss;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double total = 0.0;
    std::size_t steps = 0;
    for (const Event& event : events) {
      if (event.graph.num_edges() == 0) continue;
      TapeContext ctx;
      Var logits = mlp_->forward(ctx, ctx.constant(edge_inputs(event)));
      std::vector<float> labels(event.edge_labels.begin(),
                                event.edge_labels.end());
      Var loss =
          ctx.tape().bce_with_logits(logits, labels, {}, pos_weight);
      opt.zero_grad();
      ctx.backward(loss);
      opt.step();
      total += loss.value()(0, 0);
      ++steps;
    }
    epoch_loss.push_back(steps == 0 ? 0.0 : total / static_cast<double>(steps));
    TRKX_DEBUG << "filter epoch " << epoch << " loss " << epoch_loss.back();
  }
  return epoch_loss;
}

std::size_t FilterModel::apply(Event& event) const {
  return apply(event, config_.keep_threshold);
}

std::size_t FilterModel::apply(Event& event, float keep_threshold) const {
  TRKX_TRACE_SPAN("filter.apply", "pipeline");
  metrics().counter("pipeline.filter.events").add(1);
  const std::vector<float> scores = score(event);
  if (scores.empty()) return 0;
  std::vector<Edge> kept_edges;
  std::vector<char> kept_labels;
  std::vector<std::uint32_t> kept_idx;
  for (std::size_t e = 0; e < scores.size(); ++e) {
    if (scores[e] < keep_threshold) continue;
    kept_edges.push_back(event.graph.edge(e));
    kept_labels.push_back(event.edge_labels[e]);
    kept_idx.push_back(static_cast<std::uint32_t>(e));
  }
  const std::size_t removed = scores.size() - kept_edges.size();
  event.edge_features = row_gather(event.edge_features, kept_idx);
  event.graph = Graph(event.hits.size(), std::move(kept_edges));
  event.edge_labels = std::move(kept_labels);
  return removed;
}

}  // namespace trkx
