#include "pipeline/track_building.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace trkx {

void TrackingMetrics::merge(const TrackingMetrics& other) {
  reconstructable += other.reconstructable;
  matched += other.matched;
  candidates += other.candidates;
  fake_candidates += other.fake_candidates;
}

std::vector<TrackCandidate> build_tracks(const Event& event,
                                         const std::vector<float>& edge_scores,
                                         const TrackBuildConfig& config) {
  TRKX_TRACE_SPAN("track_building", "pipeline");
  metrics().counter("pipeline.track_building.events").add(1);
  TRKX_CHECK(edge_scores.size() == event.graph.num_edges());
  std::vector<char> mask(edge_scores.size());
  for (std::size_t e = 0; e < edge_scores.size(); ++e)
    mask[e] = edge_scores[e] >= config.edge_threshold ? 1 : 0;
  const Components comps = connected_components(event.graph, mask);

  std::vector<TrackCandidate> out;
  for (auto& group : comps.groups()) {
    if (group.size() < config.min_hits) continue;
    TrackCandidate cand;
    cand.hits = group;  // groups() yields ascending order
    // Majority vote over truth particles.
    std::map<std::int32_t, std::size_t> votes;
    for (std::uint32_t h : cand.hits) {
      const std::int32_t p = event.hits[h].particle;
      if (p != Hit::kNoise) ++votes[p];
    }
    for (const auto& [p, count] : votes) {
      const double frac =
          static_cast<double>(count) / static_cast<double>(cand.hits.size());
      if (frac > cand.majority_fraction) {
        cand.majority_fraction = frac;
        cand.matched_particle = frac > 0.5 ? p : -1;
      }
    }
    out.push_back(std::move(cand));
  }
  return out;
}

TrackingMetrics score_tracks(const Event& event,
                             const std::vector<TrackCandidate>& candidates,
                             const TrackBuildConfig& config) {
  TrackingMetrics m;
  m.candidates = candidates.size();

  // A particle is matched when some candidate passes double-majority:
  // candidate majority-owned by the particle, and covering >50 % of the
  // particle's hits.
  std::vector<char> particle_matched(event.particles.size(), 0);
  for (const TrackCandidate& cand : candidates) {
    if (cand.matched_particle < 0) {
      ++m.fake_candidates;
      continue;
    }
    const TruthParticle& p =
        event.particles[static_cast<std::size_t>(cand.matched_particle)];
    std::size_t shared = 0;
    for (std::uint32_t h : cand.hits)
      if (event.hits[h].particle == cand.matched_particle) ++shared;
    if (2 * shared > p.hits.size())
      particle_matched[static_cast<std::size_t>(cand.matched_particle)] = 1;
  }
  for (std::size_t pi = 0; pi < event.particles.size(); ++pi) {
    if (event.particles[pi].hits.size() < config.min_hits) continue;
    ++m.reconstructable;
    if (particle_matched[pi]) ++m.matched;
  }
  return m;
}

}  // namespace trkx
