#include "pipeline/embedding.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace trkx {

EmbeddingModel::EmbeddingModel(std::size_t node_feature_dim,
                               const EmbeddingConfig& config)
    : config_(config), rng_(config.seed) {
  MlpConfig mlp;
  mlp.input_dim = node_feature_dim;
  mlp.hidden_dim = config.hidden_dim;
  mlp.output_dim = config.embed_dim;
  mlp.num_hidden = config.num_hidden;
  mlp.hidden_activation = Activation::kRelu;
  mlp.output_activation = Activation::kNone;
  mlp.layer_norm = true;
  Rng init_rng = rng_.split();
  mlp_ = std::make_unique<Mlp>(store_, "embed", mlp, init_rng);
}

Matrix EmbeddingModel::embed(const Matrix& node_features) const {
  // Without a backward() call the tape is just a calculator.
  TapeContext ctx;
  Var e = mlp_->forward(ctx, ctx.constant(node_features));
  return e.value();
}

double EmbeddingModel::train_batch(const Matrix& feats_a,
                                   const Matrix& feats_b,
                                   const std::vector<float>& is_positive,
                                   Adam& opt) {
  TapeContext ctx;
  Var a = mlp_->forward(ctx, ctx.constant(feats_a));
  Var b = mlp_->forward(ctx, ctx.constant(feats_b));
  Var loss = ctx.tape().contrastive_pair_loss(a, b, is_positive,
                                              config_.margin);
  opt.zero_grad();
  ctx.backward(loss);
  opt.step();
  return loss.value()(0, 0);
}

std::vector<double> EmbeddingModel::train(const std::vector<Event>& events) {
  TRKX_TRACE_SPAN("embedding.train", "pipeline");
  metrics().counter("pipeline.embedding.events").add(1);
  TRKX_CHECK(!events.empty());
  Adam opt(store_, AdamOptions{.lr = config_.lr});
  std::vector<double> epoch_loss;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double total = 0.0;
    std::size_t batches = 0;
    for (const Event& event : events) {
      // Collect positive pairs (consecutive same-track hits).
      std::vector<std::pair<std::uint32_t, std::uint32_t>> pos;
      for (const TruthParticle& p : event.particles)
        for (std::size_t i = 0; i + 1 < p.hits.size(); ++i)
          pos.emplace_back(p.hits[i], p.hits[i + 1]);
      if (pos.empty() || event.hits.size() < 2) continue;

      const std::size_t n_pairs =
          std::min(config_.pairs_per_event, pos.size() * 2);
      std::vector<std::uint32_t> ia, ib;
      std::vector<float> labels;
      ia.reserve(n_pairs);
      ib.reserve(n_pairs);
      labels.reserve(n_pairs);
      for (std::size_t k = 0; k < n_pairs; ++k) {
        if (rng_.bernoulli(0.5)) {
          const auto& [u, v] = pos[rng_.uniform_index(pos.size())];
          ia.push_back(u);
          ib.push_back(v);
          labels.push_back(1.0f);
        } else {
          // Random pair; occasionally a true pair slips in, which is
          // harmless label noise at realistic hit counts.
          // NOLINT(trkx-narrow-cast): index < hits.size(), a uint32 count
          ia.push_back(static_cast<std::uint32_t>(
              rng_.uniform_index(event.hits.size())));
          // NOLINT(trkx-narrow-cast): index < hits.size(), a uint32 count
          ib.push_back(static_cast<std::uint32_t>(
              rng_.uniform_index(event.hits.size())));
          labels.push_back(0.0f);
        }
      }
      const Matrix fa = row_gather(event.node_features, ia);
      const Matrix fb = row_gather(event.node_features, ib);
      total += train_batch(fa, fb, labels, opt);
      ++batches;
    }
    epoch_loss.push_back(batches == 0 ? 0.0 : total / static_cast<double>(batches));
    TRKX_DEBUG << "embedding epoch " << epoch << " loss "
               << epoch_loss.back();
  }
  return epoch_loss;
}

}  // namespace trkx
