#include "detector/event.hpp"

#include <cmath>

#include "util/error.hpp"

namespace trkx {

float Hit::r() const { return std::hypot(x, y); }
float Hit::phi() const { return std::atan2(y, x); }

float Hit::eta() const {
  const float rr = r();
  if (rr == 0.0f) return 0.0f;
  const float theta = std::atan2(rr, z);
  // NOLINT(trkx-exp-log): rr > 0 above, so theta ∈ (0, π) and tan(θ/2) > 0
  return -std::log(std::tan(theta / 2.0f));
}

double Event::positive_edge_fraction() const {
  if (edge_labels.empty()) return 0.0;
  std::size_t pos = 0;
  for (char l : edge_labels) pos += (l != 0);
  return static_cast<double>(pos) / static_cast<double>(edge_labels.size());
}

namespace {

/// Wrap an angle difference into (-π, π].
float wrap_angle(float d) {
  while (d > static_cast<float>(M_PI)) d -= 2.0f * static_cast<float>(M_PI);
  while (d <= -static_cast<float>(M_PI)) d += 2.0f * static_cast<float>(M_PI);
  return d;
}

}  // namespace

void build_features(Event& event, std::size_t node_dim, std::size_t edge_dim,
                    const FeatureScales& scales, std::size_t num_layers) {
  TRKX_CHECK(node_dim > 0 && edge_dim > 0);
  TRKX_CHECK_MSG(scales.r_max > 0.0f && scales.z_max > 0.0f &&
                     scales.eta_max > 0.0f,
                 "feature scales must be positive");
  const std::size_t n = event.hits.size();
  const std::size_t m = event.graph.num_edges();
  const float inv_pi = 1.0f / static_cast<float>(M_PI);
  const float inv_r_max = 1.0f / scales.r_max;
  const float inv_z_max = 1.0f / scales.z_max;
  const float inv_eta_max = 1.0f / scales.eta_max;

  event.node_features.resize(n, node_dim);
  for (std::size_t i = 0; i < n; ++i) {
    const Hit& h = event.hits[i];
    const float r = h.r(), phi = h.phi(), eta = h.eta();
    // Candidate pool; the first node_dim entries are used.
    const float pool[14] = {
        r * inv_r_max,
        phi * inv_pi,
        h.z * inv_z_max,
        eta * inv_eta_max,
        std::cos(phi),
        std::sin(phi),
        static_cast<float>(h.layer) /
            static_cast<float>(num_layers > 1 ? num_layers - 1 : 1),
        h.x * inv_r_max,
        h.y * inv_r_max,
        r > 0.0f ? h.z / r : 0.0f,
        std::tanh(eta),
        (r * inv_r_max) * (r * inv_r_max),
        std::cos(2.0f * phi),
        std::sin(2.0f * phi),
    };
    TRKX_CHECK_MSG(node_dim <= 14, "node_dim > 14 not supported");
    for (std::size_t j = 0; j < node_dim; ++j)
      event.node_features(i, j) = pool[j];
  }

  event.edge_features.resize(m, edge_dim);
  for (std::size_t e = 0; e < m; ++e) {
    const Hit& a = event.hits[event.graph.edge(e).src];
    const Hit& b = event.hits[event.graph.edge(e).dst];
    const float dr = b.r() - a.r();
    const float dphi = wrap_angle(b.phi() - a.phi());
    const float dz = b.z - a.z;
    const float deta = b.eta() - a.eta();
    const float dR = std::sqrt(deta * deta + dphi * dphi);
    const float mid_r = 0.5f * (a.r() + b.r());
    const float pool[8] = {
        dr * inv_r_max,
        dphi * inv_pi,
        dz * inv_z_max,
        deta * inv_eta_max,
        dR,
        mid_r * inv_r_max,
        std::fabs(dr) > 1e-3f ? dz / dr : 0.0f,          // slope dz/dr
        std::fabs(dr) > 1e-3f ? dphi / (dr * inv_r_max) : 0.0f,  // curvature proxy
    };
    TRKX_CHECK_MSG(edge_dim <= 8, "edge_dim > 8 not supported");
    for (std::size_t j = 0; j < edge_dim; ++j)
      event.edge_features(e, j) = pool[j];
  }
}

}  // namespace trkx
