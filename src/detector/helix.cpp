#include "detector/helix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace trkx {

double HitPoint::r() const { return std::hypot(x, y); }
double HitPoint::phi() const { return std::atan2(y, x); }

Helix::Helix(const ParticleState& state, double b_field_tesla) {
  TRKX_CHECK(state.pt > 0.0);
  TRKX_CHECK(b_field_tesla > 0.0);
  TRKX_CHECK(state.charge == 1 || state.charge == -1);
  // R[mm] = pt[GeV] / (0.3 * B[T]) * 1000 / c-factor: standard relation
  // R[m] = pt / (0.3 B), converted to millimetres.
  radius_ = state.pt / (0.3 * b_field_tesla) * 1000.0;
  phi0_ = state.phi0;
  z0_ = state.z0;
  sinh_eta_ = std::sinh(state.eta);
  sign_ = state.charge > 0 ? 1.0 : -1.0;
}

HitPoint Helix::at(double t) const {
  TRKX_CHECK(t >= 0.0);
  // Starts at (0, 0, z0) with transverse direction (cos φ0, sin φ0).
  const double a = phi0_ + sign_ * t;
  HitPoint p;
  p.x = radius_ / sign_ * (std::sin(a) - std::sin(phi0_));
  p.y = -radius_ / sign_ * (std::cos(a) - std::cos(phi0_));
  p.z = z0_ + radius_ * t * sinh_eta_;
  return p;
}

std::optional<double> Helix::turning_angle_at_radius(double r) const {
  TRKX_CHECK(r >= 0.0);
  // Transverse distance from the origin after turning angle t is
  // d(t) = 2R·sin(t/2); the first crossing of r is t = 2·asin(r / 2R).
  // NOLINT(trkx-div-guard): radius_ > 0 is a constructor invariant
  const double arg = r / (2.0 * radius_);
  if (arg > 1.0) return std::nullopt;
  return 2.0 * std::asin(arg);
}

std::optional<HitPoint> Helix::intersect_layer(double r) const {
  auto t = turning_angle_at_radius(r);
  if (!t) return std::nullopt;
  return at(*t);
}

std::optional<double> Helix::turning_angle_at_z(double z_plane) const {
  // z(t) = z0 + R·t·sinh(η) is linear in t.
  if (std::fabs(sinh_eta_) < 1e-9) return std::nullopt;
  const double t = (z_plane - z0_) / (radius_ * sinh_eta_);
  if (t <= 0.0 || t > M_PI) return std::nullopt;
  return t;
}

std::optional<HitPoint> Helix::intersect_disk(double z_plane, double r_min,
                                              double r_max) const {
  auto t = turning_angle_at_z(z_plane);
  if (!t) return std::nullopt;
  const HitPoint p = at(*t);
  const double r = p.r();
  if (r < r_min || r > r_max) return std::nullopt;
  return p;
}

}  // namespace trkx
