#pragma once

#include <string>

#include "detector/generator.hpp"

namespace trkx {

/// A dataset preset mirroring one row of the paper's Table I, plus the
/// paper's reference statistics so benches can print paper-vs-ours.
struct DatasetSpec {
  std::string name;
  DetectorConfig detector;
  std::size_t mlp_hidden_layers = 2;  ///< Table I "MLP Layers"
  double paper_avg_vertices = 0.0;
  double paper_avg_edges = 0.0;
  double scale = 1.0;  ///< fraction of the paper's event size generated
};

/// Ex3 ("Example 3" of the acorn repo): small events, sparse graphs
/// (paper: 13.0K vertices, 47.8K edges, 6 vertex / 2 edge features,
/// 2 MLP layers). scale multiplies the per-event particle count.
DatasetSpec ex3_spec(double scale = 1.0);

/// CTD ("Connect the Dots"): large dense events (paper: 330.7K vertices,
/// 6.9M edges ≈ 21 edges/vertex, 14 vertex / 8 edge features, 3 MLP
/// layers). The default scale keeps CPU runtimes sane; the vertex/edge
/// density ratio is preserved by wider connection windows, not by scale.
DatasetSpec ctd_spec(double scale = 1.0 / 16.0);

}  // namespace trkx
