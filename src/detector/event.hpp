#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "tensor/matrix.hpp"

namespace trkx {

/// One recorded detector hit (a space point).
struct Hit {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
  std::uint32_t layer = 0;
  /// Truth particle index within the event, or kNoise for noise hits.
  std::int32_t particle = kNoise;
  static constexpr std::int32_t kNoise = -1;

  float r() const;
  float phi() const;
  float eta() const;  ///< pseudorapidity of the hit position
};

/// Truth record for one generated particle.
struct TruthParticle {
  float pt = 0.0f;
  float phi0 = 0.0f;
  float eta = 0.0f;
  float z0 = 0.0f;
  int charge = 1;
  /// Hit indices in layer order (the true track).
  std::vector<std::uint32_t> hits;
};

/// One collision event: hits, truth, the constructed candidate graph, and
/// the tensors the GNN consumes.
///
/// `graph` holds candidate edges (true track segments plus combinatorial
/// fakes from graph construction); `edge_labels[i]` says whether edge i
/// connects consecutive hits of the same particle. Features are built by
/// build_features() below.
struct Event {
  std::vector<Hit> hits;
  std::vector<TruthParticle> particles;
  Graph graph;
  std::vector<char> edge_labels;
  Matrix node_features;  ///< hits × node_feature_dim
  Matrix edge_features;  ///< edges × edge_feature_dim

  std::size_t num_hits() const { return hits.size(); }
  std::size_t num_edges() const { return graph.num_edges(); }
  double positive_edge_fraction() const;
};

/// Normalisation constants for feature building; also the documented
/// detector envelope.
struct FeatureScales {
  float r_max = 1000.0f;   ///< outermost layer radius [mm]
  float z_max = 2000.0f;   ///< barrel half-length [mm]
  float eta_max = 4.0f;
};

/// Fill event.node_features (n × node_dim) and event.edge_features
/// (m × edge_dim).
///
/// Node features (in order, cycled/extended to node_dim):
///   r/r_max, φ/π, z/z_max, η/η_max, cos φ, sin φ, layer/num_layers,
///   then engineered combinations (r·cosφ, r·sinφ, z/r, …).
/// Edge features (cycled/extended to edge_dim):
///   Δr/r_max, Δφ/π, Δz/z_max, Δη, ΔR=√(Δη²+Δφ²), midpoint r, geodesic
///   slope dz/dr, curvature proxy Δφ/Δr.
/// The dimensional knobs reproduce Table I's per-dataset feature counts
/// (Ex3: 6/2, CTD: 14/8).
void build_features(Event& event, std::size_t node_dim, std::size_t edge_dim,
                    const FeatureScales& scales, std::size_t num_layers);

}  // namespace trkx
