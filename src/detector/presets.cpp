#include "detector/presets.hpp"

#include <algorithm>
#include <cmath>

namespace trkx {

namespace {
/// Combinatorial fake edges scale with layer occupancy (∝ particle count),
/// while true segments do not. To keep a preset's edges-per-vertex ratio
/// stable when generating scaled-down events, widen the two purity levers
/// (Δη window and z0 cut) as occupancy drops: each contributes a factor
/// ≈ window/range to the fake acceptance, so √(anchor/scale) on both holds
/// the product ∝ 1/scale.
double occupancy_comp(double scale, double anchor_scale) {
  return std::sqrt(anchor_scale / std::max(scale, 1e-6));
}
}  // namespace

DatasetSpec ex3_spec(double scale) {
  DatasetSpec spec;
  spec.name = "Ex3";
  spec.scale = scale;
  spec.mlp_hidden_layers = 2;
  spec.paper_avg_vertices = 13.0e3;
  spec.paper_avg_edges = 47.8e3;

  DetectorConfig& d = spec.detector;
  // ~1640 particles × 10 layers × 98% efficiency ≈ 13.0K hits at scale 1.
  d.mean_particles = 1640.0 * scale;
  d.noise_fraction = 0.02;
  // Tight cuts give the sparse Ex3 regime (~3.7 edges per vertex,
  // calibrated at scale 1): the z0 extrapolation cut is the main purity
  // lever; Δφ is capture-driven (low-pt curvature) and left fixed.
  const double comp = occupancy_comp(scale, 1.0);
  d.z0_sigma = 20.0;  // narrower beam spot → tighter z0 cut stays efficient
  d.window_dphi = 0.35;
  d.dphi_margin = 0.02;
  d.window_deta = std::min(0.65 * comp, 2.5);
  d.z0_cut = std::min(47.0 * comp, 1800.0);
  d.allow_skip_layer = true;
  d.node_feature_dim = 6;
  d.edge_feature_dim = 2;
  return spec;
}

DatasetSpec ctd_spec(double scale) {
  DatasetSpec spec;
  spec.name = "CTD";
  spec.scale = scale;
  spec.mlp_hidden_layers = 3;
  spec.paper_avg_vertices = 330.7e3;
  spec.paper_avg_edges = 6.9e6;

  DetectorConfig& d = spec.detector;
  // ~40500 particles × 10 layers × 98% efficiency ≈ 330K hits at scale 1.
  d.mean_particles = 40500.0 * scale;
  d.noise_fraction = 0.05;
  // Looser cuts give the dense CTD regime (~21 edges per vertex,
  // calibrated at the default 1/16 scale and occupancy-compensated for
  // other scales).
  const double comp = occupancy_comp(scale, 1.0 / 16.0);
  d.window_dphi = 0.45;
  d.dphi_margin = 0.07;
  d.window_deta = std::min(1.2 * comp, 2.5);
  d.z0_cut = std::min(195.0 * comp, 1800.0);
  d.allow_skip_layer = true;
  d.node_feature_dim = 14;
  d.edge_feature_dim = 8;
  return spec;
}

}  // namespace trkx
