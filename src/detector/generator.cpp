#include "detector/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "detector/helix.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace trkx {

namespace {

float wrap_angle(float d) {
  while (d > static_cast<float>(M_PI)) d -= 2.0f * static_cast<float>(M_PI);
  while (d <= -static_cast<float>(M_PI)) d += 2.0f * static_cast<float>(M_PI);
  return d;
}

/// Sample η uniformly in [-eta_max, eta_max] and pt uniformly in
/// [pt_min, pt_max] — flat spectra keep the layer occupancy roughly even,
/// which is what matters for graph structure.
ParticleState sample_particle(const DetectorConfig& cfg, Rng& rng) {
  ParticleState s;
  s.pt = rng.uniform(static_cast<float>(cfg.pt_min),
                     static_cast<float>(cfg.pt_max));
  s.phi0 = rng.uniform(-static_cast<float>(M_PI), static_cast<float>(M_PI));
  s.eta = rng.uniform(-static_cast<float>(cfg.eta_max),
                      static_cast<float>(cfg.eta_max));
  if (cfg.displaced_fraction > 0.0 && rng.bernoulli(cfg.displaced_fraction)) {
    s.z0 = rng.normal(0.0, cfg.displaced_z0_sigma);
  } else {
    s.z0 = rng.normal(0.0, cfg.z0_sigma);
  }
  s.charge = rng.bernoulli(0.5) ? 1 : -1;
  return s;
}

/// One detector-surface crossing of a helix, in trajectory order.
struct Crossing {
  double t = 0.0;  ///< turning angle (orders the trajectory)
  HitPoint point;
  std::uint32_t surface = 0;
  bool on_disk = false;
};

/// All surface crossings of one particle, sorted along the trajectory.
std::vector<Crossing> trace_particle(const DetectorConfig& cfg,
                                     const Helix& helix) {
  std::vector<Crossing> out;
  const std::size_t num_barrel = cfg.layer_radii.size();
  for (std::size_t l = 0; l < num_barrel; ++l) {
    const auto t = helix.turning_angle_at_radius(cfg.layer_radii[l]);
    if (!t) break;  // curls before this layer (and all outer ones)
    const HitPoint p = helix.at(*t);
    if (std::fabs(p.z) > cfg.barrel_half_length) continue;  // exits to endcap
    out.push_back({*t, p, static_cast<std::uint32_t>(l), false});
  }
  for (std::size_t i = 0; i < cfg.endcap_z.size(); ++i) {
    for (int side = 0; side < 2; ++side) {
      const double z_d = side == 0 ? cfg.endcap_z[i] : -cfg.endcap_z[i];
      const auto p = helix.intersect_disk(z_d, cfg.endcap_r_min,
                                          cfg.endcap_r_max);
      if (!p) continue;
      const auto t = helix.turning_angle_at_z(z_d);
      out.push_back({*t, *p,
                     static_cast<std::uint32_t>(num_barrel + 2 * i + side),
                     true});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Crossing& a, const Crossing& b) { return a.t < b.t; });
  return out;
}

/// Record one (possibly duplicated) smeared hit for a crossing.
void record_hit(const DetectorConfig& cfg, const Crossing& c, Rng& rng,
                Event& event, TruthParticle& truth) {
  const int copies =
      1 + (cfg.duplicate_hit_probability > 0.0 &&
                   rng.bernoulli(cfg.duplicate_hit_probability)
               ? 1
               : 0);
  for (int copy = 0; copy < copies; ++copy) {
    Hit hit;
    const double phi = std::atan2(c.point.y, c.point.x);
    if (c.on_disk) {
      // Disk sensors measure (r, φ) at fixed z: smear both transverse
      // coordinates, keep z on the disk.
      hit.x = static_cast<float>(c.point.x + rng.normal(0.0, cfg.hit_sigma_rphi));
      hit.y = static_cast<float>(c.point.y + rng.normal(0.0, cfg.hit_sigma_rphi));
      hit.z = static_cast<float>(c.point.z);
    } else {
      // Barrel sensors measure (r·φ, z) on the cylinder: smear
      // tangentially and longitudinally.
      const double drphi = rng.normal(0.0, cfg.hit_sigma_rphi);
      hit.x = static_cast<float>(c.point.x - drphi * std::sin(phi));
      hit.y = static_cast<float>(c.point.y + drphi * std::cos(phi));
      hit.z = static_cast<float>(c.point.z + rng.normal(0.0, cfg.hit_sigma_z));
    }
    hit.layer = c.surface;
    hit.particle = static_cast<std::int32_t>(event.particles.size());
    TRKX_CHECK(event.hits.size() < 0xffffffffu);  // hit ids are uint32
    truth.hits.push_back(static_cast<std::uint32_t>(event.hits.size()));
    event.hits.push_back(hit);
  }
}

}  // namespace

void build_candidate_graph(Event& event, const DetectorConfig& cfg) {
  // Surfaces come from the hits themselves so externally-ingested events
  // (more surfaces than the synthetic geometry) work too.
  std::size_t num_surfaces = cfg.num_surfaces();
  for (const Hit& h : event.hits)
    num_surfaces = std::max<std::size_t>(num_surfaces, h.layer + 1);
  const std::size_t num_barrel = cfg.layer_radii.size();

  // Bucket hits per surface, sorted by φ, so window queries are sorted
  // range scans instead of all-pairs checks.
  std::vector<std::vector<std::uint32_t>> by_surface(num_surfaces);
  for (std::size_t i = 0; i < event.hits.size(); ++i)
    by_surface[event.hits[i].layer].push_back(static_cast<std::uint32_t>(i));
  std::vector<std::vector<float>> phi_of(num_surfaces);
  for (std::size_t l = 0; l < num_surfaces; ++l) {
    auto& ids = by_surface[l];
    std::sort(ids.begin(), ids.end(), [&](std::uint32_t a, std::uint32_t b) {
      return event.hits[a].phi() < event.hits[b].phi();
    });
    phi_of[l].reserve(ids.size());
    for (std::uint32_t id : ids) phi_of[l].push_back(event.hits[id].phi());
  }

  // Surface pairs to connect: barrel adjacency (with optional skips) plus
  // the *recurrent* truth transitions involving an endcap disk — which
  // wires barrel↔disk and disk→disk pairs automatically when endcaps
  // exist. Barrel-barrel pairs stay restricted to l+1/l+2 adjacency:
  // admitting every one-off transition (a track that missed two layers in
  // a row) would open an (l, l+3) window over the whole event and flood
  // it with combinatorial edges for the sake of one segment.
  std::set<std::pair<std::uint32_t, std::uint32_t>> surface_pairs;
  for (std::uint32_t l = 0; l + 1 < num_barrel; ++l) {
    surface_pairs.insert({l, l + 1});
    if (cfg.allow_skip_layer && l + 2 < num_barrel)
      surface_pairs.insert({l, l + 2});
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> transitions;
  for (const TruthParticle& p : event.particles)
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i) {
      const std::uint32_t a = event.hits[p.hits[i]].layer;
      const std::uint32_t b = event.hits[p.hits[i + 1]].layer;
      if (a != b && (a >= num_barrel || b >= num_barrel)) ++transitions[{a, b}];
    }
  for (const auto& [pair, count] : transitions)
    if (count >= 3 || event.particles.size() < 50) surface_pairs.insert(pair);

  TRKX_CHECK(cfg.b_field > 0.0);
  const double r_min_curv = cfg.pt_min / (0.3 * cfg.b_field) * 1000.0;
  const double two_r = 2.0 * r_min_curv;

  std::vector<Edge> edges;
  auto connect_surfaces = [&](std::uint32_t la, std::uint32_t lb) {
    const auto& src_ids = by_surface[la];
    const auto& dst_ids = by_surface[lb];
    const auto& dst_phi = phi_of[lb];
    if (dst_ids.empty()) return;
    const float w_cap = static_cast<float>(cfg.window_dphi);
    const float w_eta = static_cast<float>(cfg.window_deta);
    const float z0_cut = static_cast<float>(cfg.z0_cut);
    for (std::uint32_t s : src_ids) {
      const Hit& hs = event.hits[s];
      const float phi_s = hs.phi();
      const float eta_s = hs.eta();
      const float r_s = hs.r();
      // Scan the sorted φ ring, handling wrap-around by scanning the two
      // boundary segments when the window crosses ±π.
      auto scan = [&](float lo, float hi) {
        auto first = std::lower_bound(dst_phi.begin(), dst_phi.end(), lo);
        for (auto it = first; it != dst_phi.end() && *it <= hi; ++it) {
          const std::uint32_t d =
              dst_ids[static_cast<std::size_t>(it - dst_phi.begin())];
          const Hit& hd = event.hits[d];
          const float r_d = hd.r();
          if (r_d <= r_s) continue;  // outgoing tracks move outward
          const float dphi = std::fabs(wrap_angle(hd.phi() - phi_s));
          if (dphi > w_cap) continue;
          if (cfg.dphi_margin >= 0.0) {
            // Curvature bound on the hit-azimuth advance of any track
            // with pt ≥ pt_min between these two radii (hit azimuth moves
            // by half the turning angle), plus the smearing margin.
            const double sa = std::min(1.0, r_s / two_r);
            const double sb = std::min(1.0, r_d / two_r);
            const double bound =
                std::asin(sb) - std::asin(sa) + cfg.dphi_margin;
            if (dphi > bound) continue;
          }
          if (std::fabs(hd.eta() - eta_s) > w_eta) continue;
          // Straight-line r–z extrapolation back to the beamline: true
          // segments point at the beam spot; combinatorial ones rarely do.
          const float dr = r_d - r_s;
          if (dr > 1e-3f) {
            const float z0 = hs.z - r_s * (hd.z - hs.z) / dr;
            if (std::fabs(z0) > z0_cut) continue;
          }
          edges.push_back({s, d});
        }
      };
      const float lo = phi_s - w_cap, hi = phi_s + w_cap;
      const float pi = static_cast<float>(M_PI);
      if (lo < -pi) {
        scan(-pi, hi);
        scan(lo + 2.0f * pi, pi);
      } else if (hi > pi) {
        scan(lo, pi);
        scan(-pi, hi - 2.0f * pi);
      } else {
        scan(lo, hi);
      }
    }
  };
  for (const auto& [la, lb] : surface_pairs) connect_surfaces(la, lb);
  // Surface pairs can overlap (truth transitions + barrel adjacency) and
  // duplicated hits can yield duplicate candidate pairs: dedupe.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  event.graph = Graph(event.hits.size(), std::move(edges));

  // --- 4. truth edge labels: consecutive hits of the same particle ---
  // "Consecutive" means adjacent in the particle's hit sequence, so a
  // skip-layer edge over a missed hit is still a true segment.
  event.edge_labels.assign(event.graph.num_edges(), 0);
  for (const TruthParticle& p : event.particles) {
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i) {
      const std::uint32_t e = event.graph.find_edge(p.hits[i], p.hits[i + 1]);
      if (e != Graph::kNoEdge) event.edge_labels[e] = 1;
    }
  }

  // --- 5. features ---
  FeatureScales scales;
  scales.r_max = static_cast<float>(cfg.layer_radii.back());
  scales.z_max = static_cast<float>(cfg.barrel_half_length);
  for (double z : cfg.endcap_z)
    scales.z_max = std::max(scales.z_max, static_cast<float>(z));
  for (const Hit& h : event.hits) {
    scales.r_max = std::max(scales.r_max, h.r());
    scales.z_max = std::max(scales.z_max, std::fabs(h.z));
  }
  scales.eta_max = static_cast<float>(cfg.eta_max + 1.0);
  build_features(event, cfg.node_feature_dim, cfg.edge_feature_dim, scales,
                 num_surfaces);
}

Event generate_event(const DetectorConfig& cfg, Rng& rng) {
  TRKX_CHECK(!cfg.layer_radii.empty());
  Event event;
  const std::size_t num_surfaces = cfg.num_surfaces();

  // --- 1. particles and true hits (crossings in trajectory order) ---
  const int n_particles = std::max(1, rng.poisson(cfg.mean_particles));
  event.particles.reserve(static_cast<std::size_t>(n_particles));
  for (int p = 0; p < n_particles; ++p) {
    const ParticleState state = sample_particle(cfg, rng);
    const Helix helix(state, cfg.b_field);
    TruthParticle truth;
    truth.pt = static_cast<float>(state.pt);
    truth.phi0 = static_cast<float>(state.phi0);
    truth.eta = static_cast<float>(state.eta);
    truth.z0 = static_cast<float>(state.z0);
    truth.charge = state.charge;

    for (const Crossing& c : trace_particle(cfg, helix)) {
      if (!rng.bernoulli(cfg.hit_efficiency)) continue;  // detector miss
      record_hit(cfg, c, rng, event, truth);
    }
    event.particles.push_back(std::move(truth));
  }

  // --- 2. noise hits, spread over all surfaces ---
  const int n_noise = rng.poisson(cfg.noise_fraction *
                                  static_cast<double>(event.hits.size()));
  const std::size_t num_barrel = cfg.layer_radii.size();
  for (int i = 0; i < n_noise; ++i) {
    Hit hit;
    const std::size_t s = rng.uniform_index(num_surfaces);
    const double phi = rng.uniform(-static_cast<float>(M_PI),
                                   static_cast<float>(M_PI));
    if (s < num_barrel) {
      const double r = cfg.layer_radii[s];
      hit.x = static_cast<float>(r * std::cos(phi));
      hit.y = static_cast<float>(r * std::sin(phi));
      hit.z = rng.uniform(-static_cast<float>(cfg.barrel_half_length),
                          static_cast<float>(cfg.barrel_half_length));
    } else {
      const std::size_t d = (s - num_barrel) / 2;
      const int side = (s - num_barrel) % 2;
      // Area-uniform radius on the disk annulus.
      const double u = rng.uniform();
      const double r = std::sqrt(
          u * (cfg.endcap_r_max * cfg.endcap_r_max -
               cfg.endcap_r_min * cfg.endcap_r_min) +
          cfg.endcap_r_min * cfg.endcap_r_min);
      hit.x = static_cast<float>(r * std::cos(phi));
      hit.y = static_cast<float>(r * std::sin(phi));
      hit.z = static_cast<float>(side == 0 ? cfg.endcap_z[d]
                                           : -cfg.endcap_z[d]);
    }
    hit.layer = static_cast<std::uint32_t>(s);
    hit.particle = Hit::kNoise;
    event.hits.push_back(hit);
  }

  build_candidate_graph(event, cfg);
  return event;
}

double Dataset::avg_vertices() const {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto* split : {&train, &val, &test})
    for (const Event& e : *split) {
      s += static_cast<double>(e.num_hits());
      ++n;
    }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

double Dataset::avg_edges() const {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto* split : {&train, &val, &test})
    for (const Event& e : *split) {
      s += static_cast<double>(e.num_edges());
      ++n;
    }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

Dataset generate_dataset(const std::string& name, const DetectorConfig& config,
                         std::size_t train_events, std::size_t val_events,
                         std::size_t test_events, std::uint64_t seed) {
  Dataset ds;
  ds.name = name;
  ds.config = config;
  // Each event's randomness is keyed by (split, index), not split off one
  // sequential generator state: event k of a split is bit-identical no
  // matter how many events precede it or which thread generates it.
  constexpr std::uint64_t kEventStreamTag = 0x4556454e54474e31ull;
  for (std::size_t i = 0; i < train_events; ++i) {
    Rng event_rng = Rng::stream(seed ^ kEventStreamTag, 0, i);
    ds.train.push_back(generate_event(config, event_rng));
  }
  for (std::size_t i = 0; i < val_events; ++i) {
    Rng event_rng = Rng::stream(seed ^ kEventStreamTag, 1, i);
    ds.val.push_back(generate_event(config, event_rng));
  }
  for (std::size_t i = 0; i < test_events; ++i) {
    Rng event_rng = Rng::stream(seed ^ kEventStreamTag, 2, i);
    ds.test.push_back(generate_event(config, event_rng));
  }
  TRKX_INFO << "dataset '" << name << "': " << ds.total_events()
            << " events, avg vertices " << ds.avg_vertices()
            << ", avg edges " << ds.avg_edges();
  return ds;
}

}  // namespace trkx
