#pragma once

#include <string>
#include <vector>

#include "detector/event.hpp"
#include "util/rng.hpp"

namespace trkx {

/// Full description of the simulated detector and event composition.
struct DetectorConfig {
  // Geometry: cylindrical barrel layers (radii in mm) inside a solenoid,
  // optionally closed by endcap disks at fixed |z| (mirrored in ±z).
  std::vector<double> layer_radii = {32, 72, 116, 172, 260, 360, 500,
                                     660, 820, 1020};
  double barrel_half_length = 2000.0;  ///< |z| acceptance [mm]
  /// |z| positions of endcap disks (empty = barrel-only detector). Each
  /// entry creates two disks (±z) spanning [endcap_r_min, endcap_r_max].
  std::vector<double> endcap_z = {};
  double endcap_r_min = 40.0;
  double endcap_r_max = 1000.0;
  double b_field = 2.0;                ///< solenoid field [T]

  /// Surface id layout: barrel layers are 0..B-1; endcap disks follow as
  /// B + 2i (+z side) and B + 2i + 1 (−z side) for endcap_z[i].
  std::size_t num_surfaces() const {
    return layer_radii.size() + 2 * endcap_z.size();
  }

  // Event composition.
  double mean_particles = 100.0;  ///< Poisson mean tracks per event
  double pt_min = 0.5;            ///< GeV
  double pt_max = 5.0;
  double eta_max = 3.0;           ///< |η| of generated particles
  double z0_sigma = 30.0;         ///< beam spot spread [mm]

  // Detector response.
  double hit_sigma_rphi = 0.5;    ///< transverse smearing [mm]
  double hit_sigma_z = 1.0;       ///< longitudinal smearing [mm]
  double hit_efficiency = 0.98;   ///< per-layer hit detection probability
  double noise_fraction = 0.05;   ///< noise hits as a fraction of true hits
  /// Probability that a hit is read out twice (cluster splitting): the
  /// duplicate gets independent smearing and the same truth particle.
  double duplicate_hit_probability = 0.0;
  /// Fraction of particles produced away from the beam spot (secondary
  /// decays): their z0 is drawn from a much wider distribution, so the
  /// beamline-pointing z0 cut of graph construction can lose them — the
  /// realistic displaced-track inefficiency.
  double displaced_fraction = 0.0;
  double displaced_z0_sigma = 400.0;  ///< [mm]

  // Geometric graph construction: candidate edges between (skip-)adjacent
  // layers pass three physics-motivated cuts. True segments have bounded
  // |Δφ| (curvature at pt_min), near-equal pseudorapidity, and extrapolate
  // back to the beam spot in the r–z plane; combinatorial pairs mostly
  // fail at least one. The window sizes trade edge purity against segment
  // efficiency and set the edges-per-vertex density of Table I.
  double window_dphi = 0.35;      ///< hard |Δφ| cap [rad]
  double window_deta = 0.3;       ///< |Δη| acceptance
  double z0_cut = 200.0;          ///< |z0 of r–z extrapolation| [mm]
  /// Tighten |Δφ| per layer pair to the curvature bound of a pt_min track
  /// (hit azimuth advances by half the turning angle, so the bound is
  /// [asin(r_b/2R) − asin(r_a/2R)] / 1 at R = R(pt_min)), plus this margin
  /// for smearing. Negative disables the curvature bound.
  double dphi_margin = 0.02;
  bool allow_skip_layer = true;   ///< also connect layer l → l+2

  // Feature dimensions (Table I's "Vertex Features"/"Edge Features").
  std::size_t node_feature_dim = 6;
  std::size_t edge_feature_dim = 2;
};

/// Generate one event: sample particles, propagate helices through the
/// layers, apply inefficiency/smearing/noise, build the candidate graph
/// with the geometric windows, label edges against truth, and build
/// feature tensors.
Event generate_event(const DetectorConfig& config, Rng& rng);

/// Build the candidate graph, truth edge labels, and feature tensors for
/// an event whose hits and particles are already filled (shared by
/// generate_event and external-data ingestion such as the TrackML
/// reader). Surfaces are taken from the hits' layer ids; the window
/// parameters come from `config`.
void build_candidate_graph(Event& event, const DetectorConfig& config);

/// A dataset is a named set of disjoint event graphs with a train/val/test
/// split, mirroring the paper's 80/10/10 usage.
struct Dataset {
  std::string name;
  DetectorConfig config;
  std::vector<Event> train;
  std::vector<Event> val;
  std::vector<Event> test;

  std::size_t total_events() const {
    return train.size() + val.size() + test.size();
  }
  double avg_vertices() const;
  double avg_edges() const;
};

Dataset generate_dataset(const std::string& name, const DetectorConfig& config,
                         std::size_t train_events, std::size_t val_events,
                         std::size_t test_events, std::uint64_t seed);

}  // namespace trkx
