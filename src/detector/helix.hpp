#pragma once

#include <optional>
#include <vector>

namespace trkx {

/// Kinematic parameters of a charged particle produced at the beamline.
///
/// Units follow HEP conventions: momenta in GeV/c, lengths in millimetres,
/// magnetic field in Tesla. The solenoid field is along +z.
struct ParticleState {
  double pt = 1.0;      ///< transverse momentum [GeV]
  double phi0 = 0.0;    ///< initial azimuth of the momentum [rad]
  double eta = 0.0;     ///< pseudorapidity (pz = pt·sinh η)
  double z0 = 0.0;      ///< production z along the beamline [mm]
  int charge = 1;       ///< ±1
};

/// 3-D point on a trajectory.
struct HitPoint {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  double r() const;    ///< transverse radius
  double phi() const;  ///< azimuth
};

/// Analytic helix propagation in a uniform solenoid field.
///
/// The transverse projection is a circle through the origin of radius
/// R = pt / (0.0003 · B) mm (pt in GeV, B in Tesla); z advances linearly
/// with the transverse arc length: z = z0 + R·t·sinh(η), where t is the
/// turning angle.
class Helix {
 public:
  Helix(const ParticleState& state, double b_field_tesla);

  /// Curvature radius in mm.
  double radius() const { return radius_; }

  /// Position after turning angle t ≥ 0.
  HitPoint at(double t) const;

  /// Turning angle at which the helix first crosses transverse radius r,
  /// or nullopt when the circle never reaches r (r > 2R: the particle
  /// loops inside).
  std::optional<double> turning_angle_at_radius(double r) const;

  /// Turning angle at which the helix crosses the plane z = z_plane, or
  /// nullopt when it never does with t in (0, π] (wrong direction, flat
  /// helix, or beyond the first half-turn where r stops growing).
  std::optional<double> turning_angle_at_z(double z_plane) const;

  /// Convenience: the crossing point itself at transverse radius r.
  std::optional<HitPoint> intersect_layer(double r) const;
  /// Crossing point on an endcap disk at z = z_plane with r inside
  /// [r_min, r_max], if any.
  std::optional<HitPoint> intersect_disk(double z_plane, double r_min,
                                         double r_max) const;

 private:
  double radius_;
  double phi0_;
  double z0_;
  double sinh_eta_;
  double sign_;  // charge sign controls turning direction
};

}  // namespace trkx
