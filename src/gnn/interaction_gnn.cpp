#include "gnn/interaction_gnn.hpp"

#include "util/error.hpp"

namespace trkx {

InteractionGnn::InteractionGnn(ParameterStore& store, const IgnnConfig& config,
                               Rng& rng)
    : config_(config) {
  TRKX_CHECK(config.node_input_dim > 0);
  TRKX_CHECK(config.edge_input_dim > 0);
  TRKX_CHECK(config.hidden_dim > 0);
  const std::size_t h = config.hidden_dim;

  MlpConfig enc;
  enc.hidden_dim = h;
  enc.output_dim = h;
  enc.num_hidden = config.mlp_hidden;
  enc.hidden_activation = Activation::kRelu;
  enc.output_activation = Activation::kTanh;
  enc.layer_norm = config.layer_norm;

  MlpConfig node_enc = enc;
  node_enc.input_dim = config.node_input_dim;
  node_encoder_ = std::make_unique<Mlp>(store, "ignn.node_enc", node_enc, rng);
  MlpConfig edge_enc = enc;
  edge_enc.input_dim = config.edge_input_dim;
  edge_encoder_ = std::make_unique<Mlp>(store, "ignn.edge_enc", edge_enc, rng);

  // Per-layer MSG and node-update MLPs (distinct per layer, as Algorithm 1
  // notes; one shared pair when shared_weights is set).
  const std::size_t unique_layers = config.shared_weights ? 1 : config.num_layers;
  MlpConfig edge_cfg = enc;
  edge_cfg.input_dim = 6 * h;  // [Y′(2h)  X′[src](2h)  X′[dst](2h)]
  MlpConfig node_cfg = enc;
  node_cfg.input_dim = 4 * h;  // [M_src(h)  M_dst(h)  X′(2h)]
  MlpConfig gate_cfg;
  gate_cfg.input_dim = h;
  gate_cfg.hidden_dim = h;
  gate_cfg.output_dim = 1;
  gate_cfg.num_hidden = 0;  // a single linear gate keeps attention cheap
  gate_cfg.output_activation = Activation::kSigmoid;
  for (std::size_t l = 0; l < unique_layers; ++l) {
    edge_mlps_.push_back(std::make_unique<Mlp>(
        store, "ignn.edge_mlp" + std::to_string(l), edge_cfg, rng));
    node_mlps_.push_back(std::make_unique<Mlp>(
        store, "ignn.node_mlp" + std::to_string(l), node_cfg, rng));
    if (config.attention) {
      gate_mlps_.push_back(std::make_unique<Mlp>(
          store, "ignn.gate_mlp" + std::to_string(l), gate_cfg, rng));
    }
  }

  MlpConfig cls = enc;
  cls.input_dim = h;
  cls.output_dim = 1;
  cls.output_activation = Activation::kNone;
  cls.layer_norm = false;
  edge_classifier_ = std::make_unique<Mlp>(store, "ignn.classifier", cls, rng);
}

const Mlp& InteractionGnn::edge_mlp(std::size_t layer) const {
  return *edge_mlps_[config_.shared_weights ? 0 : layer];
}

const Mlp& InteractionGnn::node_mlp(std::size_t layer) const {
  return *node_mlps_[config_.shared_weights ? 0 : layer];
}

Var InteractionGnn::forward(TapeContext& ctx, const Matrix& node_features,
                            const Matrix& edge_features,
                            const std::vector<std::uint32_t>& src,
                            const std::vector<std::uint32_t>& dst,
                            std::size_t num_vertices) const {
  TRKX_CHECK(node_features.cols() == config_.node_input_dim);
  TRKX_CHECK(edge_features.cols() == config_.edge_input_dim);
  TRKX_CHECK(node_features.rows() == num_vertices);
  TRKX_CHECK(src.size() == edge_features.rows());
  TRKX_CHECK(dst.size() == edge_features.rows());
  Tape& t = ctx.tape();

  Var x_in = ctx.constant(node_features);
  Var y_in = ctx.constant(edge_features);
  Var x0 = node_encoder_->forward(ctx, x_in);  // X⁰ (n × h)
  Var y0 = edge_encoder_->forward(ctx, y_in);  // Y⁰ (m × h)
  Var x = x0;
  Var y = y0;

  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    Var x_cat = t.concat_cols({x, x0});  // X′ (n × 2h)
    Var y_cat = t.concat_cols({y, y0});  // Y′ (m × 2h)
    // MSG: per-edge update from the edge state and both endpoints.
    Var x_src = t.row_gather(x_cat, src);
    Var x_dst = t.row_gather(x_cat, dst);
    Var msg_in = t.concat_cols({y_cat, x_src, x_dst});  // m × 6h
    Var y_new = edge_mlp(l).forward(ctx, msg_in);       // Yˡ⁺¹ (m × h)
    // AGG: sum incident edge messages at each endpoint role, optionally
    // gated per edge so unreliable (fake) edges contribute less.
    Var messages = y_new;
    if (config_.attention) {
      const Mlp& gate =
          *gate_mlps_[config_.shared_weights ? 0 : l];
      Var alpha = gate.forward(ctx, y_new);  // m × 1 in (0, 1)
      messages = t.scale_rows(y_new, alpha);
    }
    Var m_src = t.segment_sum(messages, src, num_vertices);
    Var m_dst = t.segment_sum(messages, dst, num_vertices);
    Var node_in = t.concat_cols({m_src, m_dst, x_cat});  // n × 4h
    Var x_new = node_mlp(l).forward(ctx, node_in);       // Xˡ⁺¹ (n × h)
    x = x_new;
    y = y_new;
  }
  return edge_classifier_->forward(ctx, y);  // m × 1 logits
}

Var InteractionGnn::forward(TapeContext& ctx, const Matrix& node_features,
                            const Matrix& edge_features,
                            const Graph& graph) const {
  return forward(ctx, node_features, edge_features, graph.src_indices(),
                 graph.dst_indices(), graph.num_vertices());
}

std::vector<float> InteractionGnn::predict(const Matrix& node_features,
                                           const Matrix& edge_features,
                                           const Graph& graph) const {
  TapeContext ctx;
  Var logits = forward(ctx, node_features, edge_features, graph);
  Var probs = ctx.tape().sigmoid(logits);
  const Matrix& p = probs.value();
  std::vector<float> out(p.rows());
  for (std::size_t i = 0; i < p.rows(); ++i) out[i] = p(i, 0);
  return out;
}

std::size_t ignn_activation_estimate(const IgnnConfig& config,
                                     std::size_t num_vertices,
                                     std::size_t num_edges) {
  const std::size_t h = config.hidden_dim;
  // Per layer, the dominant retained activations (Algorithm 1's
  // X^{l+1}, Y^{l+1}, M_src, M_dst plus the 6h-wide MSG input):
  const std::size_t per_layer =
      num_edges * (6 * h + h)          // msg input + Y^{l+1}
      + num_vertices * (4 * h + h + 2 * h)  // node input + X^{l+1} + M
      ;
  return per_layer * config.num_layers + (num_vertices + num_edges) * h;
}

}  // namespace trkx
