#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "nn/mlp.hpp"
#include "util/annotations.hpp"

namespace trkx {

/// Interaction GNN hyperparameters (paper defaults: hidden 64, 8 layers).
struct IgnnConfig {
  std::size_t node_input_dim = 0;
  std::size_t edge_input_dim = 0;
  std::size_t hidden_dim = 64;
  /// Message-passing iterations (L). 0 is allowed and degenerates to an
  /// edge-feature MLP classifier with no graph context — the
  /// "does message passing matter" ablation baseline.
  std::size_t num_layers = 8;
  std::size_t mlp_hidden = 2;   ///< hidden layers inside each φ (Table I)
  bool layer_norm = true;
  /// Share one edge-MLP and one node-MLP across all L iterations instead
  /// of distinct per-layer MLPs. Cuts parameters ~L×; ablation knob.
  bool shared_weights = false;
  /// Attention-gated aggregation: each edge message Yˡ⁺¹ₑ is weighted by a
  /// learned gate σ(φ_att(Yˡ⁺¹ₑ)) before the segment sums, so noisy fake
  /// edges can be down-weighted during node updates (a GAT-flavoured
  /// extension beyond the paper's plain-sum IGNN).
  bool attention = false;
};

/// Interaction Network for edge classification — Algorithm 1 of the paper.
///
/// Per layer l:
///   X′ = [Xˡ X⁰],  Y′ = [Yˡ Y⁰]          (initial-feature skip concat)
///   Yˡ⁺¹ = φₑˡ([Y′  X′[src]  X′[dst]])     (MSG: per-edge MLP)
///   M_src = Σ_{e: src(e)=v} Yˡ⁺¹ₑ          (AGG via segment_sum)
///   M_dst = Σ_{e: dst(e)=v} Yˡ⁺¹ₑ
///   Xˡ⁺¹ = φᵥˡ([M_src  M_dst  X′])
/// and the output is a per-edge logit φ_out(Y^L) for binary track/fake
/// classification.
class InteractionGnn {
 public:
  InteractionGnn(ParameterStore& store, const IgnnConfig& config, Rng& rng);

  /// Record the forward pass on `ctx`; returns m×1 edge logits.
  /// `src`/`dst` are the endpoint index arrays of the m edges (A.rows /
  /// A.cols); `num_vertices` bounds the aggregation.
  Var forward(TapeContext& ctx, const Matrix& node_features,
              const Matrix& edge_features,
              const std::vector<std::uint32_t>& src,
              const std::vector<std::uint32_t>& dst,
              std::size_t num_vertices) const;

  /// Convenience: forward on a whole graph.
  Var forward(TapeContext& ctx, const Matrix& node_features,
              const Matrix& edge_features, const Graph& graph) const;

  /// Inference without retaining gradients: per-edge P(track edge).
  /// Inference stage 4: TRKX_HOT — no allocation/blocking in its closure.
  TRKX_HOT std::vector<float> predict(const Matrix& node_features,
                                      const Matrix& edge_features,
                                      const Graph& graph) const;

  const IgnnConfig& config() const { return config_; }

 private:
  const Mlp& edge_mlp(std::size_t layer) const;
  const Mlp& node_mlp(std::size_t layer) const;

  IgnnConfig config_;
  std::unique_ptr<Mlp> node_encoder_;
  std::unique_ptr<Mlp> edge_encoder_;
  std::vector<std::unique_ptr<Mlp>> edge_mlps_;  ///< per layer (or 1 shared)
  std::vector<std::unique_ptr<Mlp>> node_mlps_;
  std::vector<std::unique_ptr<Mlp>> gate_mlps_;  ///< attention gates (opt.)
  std::unique_ptr<Mlp> edge_classifier_;
};

/// Count of activation floats a full-graph IGNN forward materialises —
/// the memory-wall quantity (≈ per-layer m·f edge activations) that makes
/// Exa.TrkX skip large graphs. Used by the memory ablation bench.
std::size_t ignn_activation_estimate(const IgnnConfig& config,
                                     std::size_t num_vertices,
                                     std::size_t num_edges);

}  // namespace trkx
