#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "nn/mlp.hpp"

namespace trkx {

/// Baseline edge classifier built on graph-convolution layers (Kipf &
/// Welling style) rather than the Interaction Network: node states are
/// propagated with the symmetric-normalised adjacency, H' = σ(Â·H·W), and
/// each edge is classified from [h_src ‖ h_dst ‖ edge features].
///
/// Compared to the IGNN, a GCN has no per-edge hidden state, so it is far
/// cheaper per layer (SpMM instead of per-edge MLPs) but weaker on
/// edge-level discrimination — the model-family comparison the paper's
/// baseline choice implies.
struct GcnConfig {
  std::size_t node_input_dim = 0;
  std::size_t edge_input_dim = 0;
  std::size_t hidden_dim = 64;
  std::size_t num_layers = 3;
  std::size_t mlp_hidden = 1;  ///< hidden layers in the encoder/head MLPs
};

class GcnEdgeClassifier {
 public:
  GcnEdgeClassifier(ParameterStore& store, const GcnConfig& config, Rng& rng);

  /// Symmetric-normalised adjacency with self loops:
  /// Â = D^(-1/2) (A_sym + I) D^(-1/2). Build once per graph; the caller
  /// must keep it alive for the duration of each tape that uses it.
  static CsrMatrix normalized_adjacency(const Graph& graph);

  /// Record the forward pass on `ctx`; returns m×1 edge logits. `norm_adj`
  /// must be normalized_adjacency(graph) (or equivalent) for the same
  /// vertex set as node_features.
  Var forward(TapeContext& ctx, const CsrMatrix& norm_adj,
              const Matrix& node_features, const Matrix& edge_features,
              const std::vector<std::uint32_t>& src,
              const std::vector<std::uint32_t>& dst) const;

  /// Inference convenience: per-edge P(track edge).
  std::vector<float> predict(const Matrix& node_features,
                             const Matrix& edge_features,
                             const Graph& graph) const;

  const GcnConfig& config() const { return config_; }

 private:
  GcnConfig config_;
  std::unique_ptr<Mlp> node_encoder_;
  std::vector<Parameter*> layer_weights_;  ///< W per GCN layer (h×h)
  std::vector<Parameter*> layer_bias_;     ///< 1×h per layer
  std::unique_ptr<Mlp> edge_head_;
};

}  // namespace trkx
