#include "gnn/gcn.hpp"

#include <cmath>

#include "util/error.hpp"

namespace trkx {

GcnEdgeClassifier::GcnEdgeClassifier(ParameterStore& store,
                                     const GcnConfig& config, Rng& rng)
    : config_(config) {
  TRKX_CHECK(config.node_input_dim > 0);
  TRKX_CHECK(config.edge_input_dim > 0);
  TRKX_CHECK(config.hidden_dim > 0);
  const std::size_t h = config.hidden_dim;

  MlpConfig enc;
  enc.input_dim = config.node_input_dim;
  enc.hidden_dim = h;
  enc.output_dim = h;
  enc.num_hidden = config.mlp_hidden;
  enc.hidden_activation = Activation::kRelu;
  enc.output_activation = Activation::kTanh;
  node_encoder_ = std::make_unique<Mlp>(store, "gcn.node_enc", enc, rng);

  for (std::size_t l = 0; l < config.num_layers; ++l) {
    Parameter& w = store.create("gcn.layer" + std::to_string(l) + ".weight",
                                h, h);
    init_xavier_uniform(w.value, rng);
    Parameter& b = store.create("gcn.layer" + std::to_string(l) + ".bias",
                                1, h);
    layer_weights_.push_back(&w);
    layer_bias_.push_back(&b);
  }

  MlpConfig head;
  head.input_dim = 2 * h + config.edge_input_dim;
  head.hidden_dim = h;
  head.output_dim = 1;
  head.num_hidden = config.mlp_hidden;
  head.hidden_activation = Activation::kRelu;
  head.output_activation = Activation::kNone;
  edge_head_ = std::make_unique<Mlp>(store, "gcn.edge_head", head, rng);
}

CsrMatrix GcnEdgeClassifier::normalized_adjacency(const Graph& graph) {
  // A_sym + I, then symmetric degree normalisation.
  std::vector<Triplet> trips;
  trips.reserve(graph.num_edges() * 2 + graph.num_vertices());
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    trips.push_back({e.src, e.dst, 1.0f});
    trips.push_back({e.dst, e.src, 1.0f});
  }
  for (std::uint32_t v = 0; v < graph.num_vertices(); ++v)
    trips.push_back({v, v, 1.0f});
  CsrMatrix a = CsrMatrix::from_triplets(graph.num_vertices(),
                                         graph.num_vertices(),
                                         std::move(trips));
  for (float& v : a.values()) v = 1.0f;  // collapse duplicate sums
  // D^(-1/2) scaling on both sides.
  std::vector<float> inv_sqrt_deg(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const std::size_t deg = a.row_nnz(r);
    inv_sqrt_deg[r] = deg == 0 ? 0.0f
                               : 1.0f / std::sqrt(static_cast<float>(deg));
  }
  auto trips2 = a.to_triplets();
  for (Triplet& t : trips2)
    t.val = inv_sqrt_deg[t.row] * inv_sqrt_deg[t.col];
  return CsrMatrix::from_triplets(a.rows(), a.cols(), std::move(trips2),
                                  false);
}

Var GcnEdgeClassifier::forward(TapeContext& ctx, const CsrMatrix& norm_adj,
                               const Matrix& node_features,
                               const Matrix& edge_features,
                               const std::vector<std::uint32_t>& src,
                               const std::vector<std::uint32_t>& dst) const {
  TRKX_CHECK(node_features.cols() == config_.node_input_dim);
  TRKX_CHECK(edge_features.cols() == config_.edge_input_dim);
  TRKX_CHECK(norm_adj.rows() == node_features.rows());
  TRKX_CHECK(src.size() == edge_features.rows());
  Tape& t = ctx.tape();

  Var h = node_encoder_->forward(ctx, ctx.constant(node_features));
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    Var w = ctx.bind(*layer_weights_[l]);
    Var b = ctx.bind(*layer_bias_[l]);
    // H' = relu(Â·H·W + b) with a residual connection for depth.
    Var agg = t.spmm(norm_adj, h);
    Var lin = t.linear(agg, w, b);
    h = t.add(t.relu(lin), h);
  }
  Var h_src = t.row_gather(h, src);
  Var h_dst = t.row_gather(h, dst);
  Var head_in = t.concat_cols({h_src, h_dst, ctx.constant(edge_features)});
  return edge_head_->forward(ctx, head_in);
}

std::vector<float> GcnEdgeClassifier::predict(const Matrix& node_features,
                                              const Matrix& edge_features,
                                              const Graph& graph) const {
  const CsrMatrix norm_adj = normalized_adjacency(graph);
  TapeContext ctx;
  Var logits = forward(ctx, norm_adj, node_features, edge_features,
                       graph.src_indices(), graph.dst_indices());
  Var probs = ctx.tape().sigmoid(logits);
  std::vector<float> out(probs.rows());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = probs.value()(i, 0);
  return out;
}

}  // namespace trkx
