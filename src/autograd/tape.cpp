#include "autograd/tape.hpp"

#include <memory>

#include <cmath>
#include <cstring>

#include "sparse/spgemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/numerics.hpp"

namespace trkx {

const Matrix& Var::value() const {
  TRKX_CHECK(tape_ != nullptr);
  return tape_->node(*this).value;
}

const Matrix& Var::grad() const {
  TRKX_CHECK(tape_ != nullptr);
  const auto& n = tape_->node(*this);
  TRKX_CHECK_MSG(!n.grad.empty(), "grad() read before backward()");
  return n.grad;
}

bool Var::requires_grad() const {
  TRKX_CHECK(tape_ != nullptr);
  return tape_->node(*this).requires_grad;
}

Var Tape::leaf(Matrix value, bool requires_grad) {
  return emit(std::move(value), requires_grad, "leaf", nullptr);
}

Var Tape::emit(Matrix value, bool requires_grad, const char* op,
               std::function<void(Node&)> backward) {
  // tanh/sigmoid emit with a null backward and attach it afterwards, so the
  // "is this a computed op" test keys off the op name, not the closure.
  if (check_numerics_enabled() && std::strcmp(op, "leaf") != 0) {
    TRKX_CHECK_MSG(all_finite(value),
                   "TRKX_CHECK_NUMERICS: non-finite value in forward output of '"
                       << op << "'");
  }
  nodes_.push_back(Node{std::move(value), Matrix{}, requires_grad, op,
                        std::move(backward)});
  return Var(this, nodes_.size() - 1);
}

void Tape::accumulate(Var v, Matrix g) {
  if (check_numerics_enabled() && current_backward_op_ != nullptr) {
    TRKX_CHECK_MSG(all_finite(g),
                   "TRKX_CHECK_NUMERICS: non-finite gradient from backward of '"
                       << current_backward_op_ << "' flowing into '"
                       << node(v).op << "'");
  }
  Node& n = node(v);
  if (!n.requires_grad) return;
  if (n.grad.empty()) {
    n.grad = std::move(g);
  } else {
    add_inplace(n.grad, g);
  }
}

std::size_t Tape::activation_floats() const {
  std::size_t total = 0;
  for (const auto& n : nodes_) total += n.value.size();
  return total;
}

Var Tape::matmul(Var a, Var b) {
  Matrix out = trkx::matmul(a.value(), b.value());
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Tape* t = this;
  return emit(std::move(out), rg, "matmul", [t, a, b](Node& n) {
    if (t->node(a).requires_grad)
      t->accumulate(a, matmul_nt(n.grad, b.value()));
    if (t->node(b).requires_grad)
      t->accumulate(b, matmul_tn(a.value(), n.grad));
  });
}

Var Tape::linear(Var x, Var w, Var bias) {
  TRKX_CHECK(bias.value().rows() == 1 &&
             bias.value().cols() == w.value().cols());
  Matrix out = add_row_broadcast(trkx::matmul(x.value(), w.value()),
                                 bias.value());
  const bool rg = node(x).requires_grad || node(w).requires_grad ||
                  node(bias).requires_grad;
  Tape* t = this;
  return emit(std::move(out), rg, "linear", [t, x, w, bias](Node& n) {
    if (t->node(x).requires_grad)
      t->accumulate(x, matmul_nt(n.grad, w.value()));
    if (t->node(w).requires_grad)
      t->accumulate(w, matmul_tn(x.value(), n.grad));
    if (t->node(bias).requires_grad) t->accumulate(bias, colwise_sum(n.grad));
  });
}

Var Tape::add(Var a, Var b) {
  Matrix out = trkx::add(a.value(), b.value());
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Tape* t = this;
  return emit(std::move(out), rg, "add", [t, a, b](Node& n) {
    t->accumulate(a, n.grad);
    t->accumulate(b, n.grad);
  });
}

Var Tape::sub(Var a, Var b) {
  Matrix out = trkx::sub(a.value(), b.value());
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Tape* t = this;
  return emit(std::move(out), rg, "sub", [t, a, b](Node& n) {
    t->accumulate(a, n.grad);
    t->accumulate(b, trkx::scale(n.grad, -1.0f));
  });
}

Var Tape::hadamard(Var a, Var b) {
  Matrix out = trkx::hadamard(a.value(), b.value());
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Tape* t = this;
  return emit(std::move(out), rg, "hadamard", [t, a, b](Node& n) {
    if (t->node(a).requires_grad)
      t->accumulate(a, trkx::hadamard(n.grad, b.value()));
    if (t->node(b).requires_grad)
      t->accumulate(b, trkx::hadamard(n.grad, a.value()));
  });
}

Var Tape::scale(Var a, float s) {
  Matrix out = trkx::scale(a.value(), s);
  Tape* t = this;
  return emit(std::move(out), node(a).requires_grad, "scale", [t, a, s](Node& n) {
    t->accumulate(a, trkx::scale(n.grad, s));
  });
}

Var Tape::relu(Var a) {
  Matrix out = apply(a.value(), [](float x) { return x > 0.0f ? x : 0.0f; });
  Tape* t = this;
  return emit(std::move(out), node(a).requires_grad, "relu", [t, a](Node& n) {
    t->accumulate(a, apply2(n.grad, a.value(), [](float g, float x) {
                    return x > 0.0f ? g : 0.0f;
                  }));
  });
}

Var Tape::tanh(Var a) {
  Matrix out = apply(a.value(), [](float x) { return std::tanh(x); });
  Tape* t = this;
  Var v = emit(std::move(out), node(a).requires_grad, "tanh", nullptr);
  // Backward reads the op's own output (y): d/dx tanh = 1 - y².
  node(v).backward = [t, a, v](Node& n) {
    t->accumulate(a, apply2(n.grad, v.value(), [](float g, float y) {
                    return g * (1.0f - y * y);
                  }));
  };
  return v;
}

Var Tape::sigmoid(Var a) {
  Matrix out = apply(a.value(), [](float x) {
    return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                     : std::exp(x) / (1.0f + std::exp(x));
  });
  Tape* t = this;
  Var v = emit(std::move(out), node(a).requires_grad, "sigmoid", nullptr);
  node(v).backward = [t, a, v](Node& n) {
    t->accumulate(a, apply2(n.grad, v.value(), [](float g, float y) {
                    return g * y * (1.0f - y);
                  }));
  };
  return v;
}

Var Tape::layer_norm(Var x, Var gamma, Var beta, float eps) {
  const Matrix& xv = x.value();
  const std::size_t rows = xv.rows(), cols = xv.cols();
  TRKX_CHECK(gamma.value().rows() == 1 && gamma.value().cols() == cols);
  TRKX_CHECK(beta.value().rows() == 1 && beta.value().cols() == cols);
  // Save per-row inverse stddev and x_hat for the backward pass.
  auto inv_std = std::make_shared<std::vector<float>>(rows);
  auto xhat = std::make_shared<Matrix>(rows, cols);
  Matrix out(rows, cols);
  kernels::active().layer_norm_fwd(xv.data(), gamma.value().data(),
                                   beta.value().data(), out.data(),
                                   xhat->data(), inv_std->data(), rows, cols,
                                   eps);
  const bool rg = node(x).requires_grad || node(gamma).requires_grad ||
                  node(beta).requires_grad;
  Tape* t = this;
  return emit(std::move(out), rg, "layer_norm",
              [t, x, gamma, beta, xhat, inv_std, cols](Node& n) {
    const std::size_t rows = n.grad.rows();
    if (t->node(gamma).requires_grad) {
      // Same products, same row-order per-column accumulation as the
      // historical explicit loop.
      t->accumulate(gamma, trkx::colwise_sum(trkx::hadamard(n.grad, *xhat)));
    }
    if (t->node(beta).requires_grad) t->accumulate(beta, colwise_sum(n.grad));
    if (t->node(x).requires_grad) {
      Matrix dx(rows, cols);
      // dx = (is/cols) * (cols*dy*g - sum(dy*g) - xhat * sum(dy*g*xhat))
      kernels::active().layer_norm_bwd_dx(n.grad.data(), gamma.value().data(),
                                          xhat->data(), inv_std->data(),
                                          dx.data(), rows, cols);
      t->accumulate(x, dx);
    }
  });
}

Var Tape::concat_cols(const std::vector<Var>& blocks) {
  TRKX_CHECK(!blocks.empty());
  std::vector<const Matrix*> mats;
  mats.reserve(blocks.size());
  bool rg = false;
  for (Var b : blocks) {
    mats.push_back(&b.value());
    rg = rg || node(b).requires_grad;
  }
  Matrix out = trkx::concat_cols(mats);
  Tape* t = this;
  auto blocks_copy = blocks;
  return emit(std::move(out), rg, "concat_cols", [t, blocks_copy](Node& n) {
    std::size_t off = 0;
    for (Var b : blocks_copy) {
      const std::size_t w = b.value().cols();
      if (t->node(b).requires_grad)
        t->accumulate(b, trkx::slice_cols(n.grad, off, w));
      off += w;
    }
  });
}

Var Tape::slice_cols(Var a, std::size_t start, std::size_t len) {
  Matrix out = trkx::slice_cols(a.value(), start, len);
  Tape* t = this;
  return emit(std::move(out), node(a).requires_grad, "slice_cols",
              [t, a, start, len](Node& n) {
    Matrix g(a.value().rows(), a.value().cols(), 0.0f);
    for (std::size_t i = 0; i < n.grad.rows(); ++i)
      for (std::size_t j = 0; j < len; ++j) g(i, start + j) = n.grad(i, j);
    t->accumulate(a, g);
  });
}

Var Tape::scale_rows(Var rows, Var scalars) {
  const Matrix& r = rows.value();
  const Matrix& s = scalars.value();
  TRKX_CHECK_MSG(s.rows() == r.rows() && s.cols() == 1,
                 "scale_rows expects m x 1 scalars, got " << s.shape_str());
  Matrix out(r.rows(), r.cols());
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const float w = s(i, 0);
    for (std::size_t j = 0; j < r.cols(); ++j) out(i, j) = r(i, j) * w;
  }
  const bool rg = node(rows).requires_grad || node(scalars).requires_grad;
  Tape* t = this;
  return emit(std::move(out), rg, "scale_rows", [t, rows, scalars](Node& n) {
    const Matrix& r = rows.value();
    const Matrix& s = scalars.value();
    if (t->node(rows).requires_grad) {
      Matrix gr(r.rows(), r.cols());
      for (std::size_t i = 0; i < r.rows(); ++i) {
        const float w = s(i, 0);
        for (std::size_t j = 0; j < r.cols(); ++j)
          gr(i, j) = n.grad(i, j) * w;
      }
      t->accumulate(rows, gr);
    }
    if (t->node(scalars).requires_grad) {
      Matrix gs(r.rows(), 1);
      for (std::size_t i = 0; i < r.rows(); ++i) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < r.cols(); ++j)
          acc += n.grad(i, j) * r(i, j);
        gs(i, 0) = acc;
      }
      t->accumulate(scalars, gs);
    }
  });
}

Var Tape::spmm(const CsrMatrix& a, Var x) {
  TRKX_CHECK(a.cols() == x.value().rows());
  Matrix out = trkx::spmm(a, x.value());
  Tape* t = this;
  // Backward: dL/dX = Aᵀ · dL/dY. Transposing per backward call is fine —
  // the GCN models cache their normalised adjacency per step anyway.
  return emit(std::move(out), node(x).requires_grad, "spmm", [t, x, &a](Node& n) {
    t->accumulate(x, trkx::spmm(a.transpose(), n.grad));
  });
}

Var Tape::row_gather(Var x, std::vector<std::uint32_t> index) {
  Matrix out = trkx::row_gather(x.value(), index);
  Tape* t = this;
  // Pooling shared closure state is ROADMAP work.
  // NOLINT(trkx-hot-alloc): backward-closure index buffer outlives the frame
  auto idx = std::make_shared<std::vector<std::uint32_t>>(std::move(index));
  return emit(std::move(out), node(x).requires_grad, "row_gather", [t, x, idx](Node& n) {
    Matrix g(x.value().rows(), x.value().cols(), 0.0f);
    row_scatter_add(g, *idx, n.grad);
    t->accumulate(x, g);
  });
}

Var Tape::segment_sum(Var y, std::vector<std::uint32_t> index,
                      std::size_t num_segments) {
  Matrix out = trkx::segment_sum(y.value(), index, num_segments);
  Tape* t = this;
  auto idx = std::make_shared<std::vector<std::uint32_t>>(std::move(index));
  return emit(std::move(out), node(y).requires_grad, "segment_sum", [t, y, idx](Node& n) {
    // Gradient of scatter-add is gather.
    t->accumulate(y, trkx::row_gather(n.grad, *idx));
  });
}

Var Tape::bce_with_logits(Var logits, const std::vector<float>& labels,
                          const std::vector<float>& weights,
                          float pos_weight) {
  const Matrix& z = logits.value();
  TRKX_CHECK_MSG(z.cols() == 1, "bce expects m x 1 logits, got "
                                    << z.shape_str());
  TRKX_CHECK(labels.size() == z.rows());
  TRKX_CHECK(weights.empty() || weights.size() == z.rows());
  const std::size_t m = z.rows();
  TRKX_CHECK(m > 0);

  double total_weight = 0.0;
  double loss = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const float zi = z(i, 0);
    const float y = labels[i];
    const float w = weights.empty() ? 1.0f : weights[i];
    // Stable form: with class weight c = 1 + (pos_weight-1)*y,
    // l = c * [ log(1 + exp(-|z|)) + max(z,0) ] - c*y*z  ... specialised:
    const float cw = w * (1.0f + (pos_weight - 1.0f) * y);
    const float log1p = std::log1p(std::exp(-std::fabs(zi)));
    const float term = std::max(zi, 0.0f) - zi * y + log1p;
    // For pos_weight != 1 the standard form weights only the positive term;
    // we use the common "effective sample weight" formulation (PyTorch's
    // pos_weight behaviour for y in {0,1} reduces to this).
    loss += static_cast<double>(cw) * term;
    total_weight += cw;
  }
  TRKX_CHECK(total_weight > 0.0);
  Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / total_weight);

  Tape* t = this;
  auto lbl = std::make_shared<std::vector<float>>(labels);
  auto wts = std::make_shared<std::vector<float>>(weights);
  return emit(std::move(out), node(logits).requires_grad, "bce_with_logits",
              [t, logits, lbl, wts, pos_weight, total_weight](Node& n) {
    const Matrix& z = logits.value();
    const std::size_t m = z.rows();
    Matrix g(m, 1);
    TRKX_CHECK(total_weight > 0.0);  // captured from the checked forward
    const float gscale =
        n.grad(0, 0) / static_cast<float>(total_weight);
    for (std::size_t i = 0; i < m; ++i) {
      const float zi = z(i, 0);
      const float y = (*lbl)[i];
      const float w = wts->empty() ? 1.0f : (*wts)[i];
      const float cw = w * (1.0f + (pos_weight - 1.0f) * y);
      const float s = zi >= 0.0f ? 1.0f / (1.0f + std::exp(-zi))
                                 : std::exp(zi) / (1.0f + std::exp(zi));
      g(i, 0) = gscale * cw * (s - y);
    }
    t->accumulate(logits, g);
  });
}

Var Tape::contrastive_pair_loss(Var a, Var b,
                                const std::vector<float>& labels,
                                float margin) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  TRKX_CHECK(av.same_shape(bv));
  TRKX_CHECK(labels.size() == av.rows());
  const std::size_t n = av.rows(), f = av.cols();
  TRKX_CHECK(n > 0);

  auto dist = std::make_shared<std::vector<float>>(n);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < f; ++j) {
      const double diff = av(i, j) - bv(i, j);
      d2 += diff * diff;
    }
    const float d = static_cast<float>(std::sqrt(d2 + 1e-12));
    (*dist)[i] = d;
    if (labels[i] > 0.5f) {
      loss += d2;
    } else {
      const float gap = margin - d;
      if (gap > 0.0f) loss += static_cast<double>(gap) * gap;
    }
  }
  Matrix out(1, 1);
  // NOLINT(trkx-div-guard): n > 0 checked at entry
  out(0, 0) = static_cast<float>(loss / static_cast<double>(n));

  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Tape* t = this;
  auto lbl = std::make_shared<std::vector<float>>(labels);
  return emit(std::move(out), rg, "contrastive_pair_loss",
              [t, a, b, lbl, dist, margin](Node& nd) {
    const Matrix& av = a.value();
    const Matrix& bv = b.value();
    const std::size_t n = av.rows(), f = av.cols();
    TRKX_CHECK(n > 0);  // non-empty batch checked in the forward
    const float gscale = nd.grad(0, 0) / static_cast<float>(n);
    Matrix ga(n, f, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
      float coeff;  // d(loss_i)/d(d²) scaled into d(loss_i)/d(diff) = coeff*diff
      if ((*lbl)[i] > 0.5f) {
        coeff = 2.0f;
      } else {
        const float d = (*dist)[i];
        const float gap = margin - d;
        // d/d(diff) of gap² = 2·gap·(−d'/d(diff)) = −2·gap·diff/d
        coeff = gap > 0.0f ? -2.0f * gap / std::max(d, 1e-6f) : 0.0f;
      }
      for (std::size_t j = 0; j < f; ++j)
        ga(i, j) = gscale * coeff * (av(i, j) - bv(i, j));
    }
    if (t->node(a).requires_grad) t->accumulate(a, ga);
    if (t->node(b).requires_grad) {
      for (float& x : ga.flat()) x = -x;
      t->accumulate(b, ga);
    }
  });
}

Var Tape::mean_square(Var a) {
  const Matrix& v = a.value();
  TRKX_CHECK(v.size() > 0);
  double s = 0.0;
  for (float x : v.flat()) s += static_cast<double>(x) * x;
  Matrix out(1, 1);
  out(0, 0) = static_cast<float>(s / static_cast<double>(v.size()));
  Tape* t = this;
  return emit(std::move(out), node(a).requires_grad, "mean_square", [t, a](Node& n) {
    const float c = 2.0f * n.grad(0, 0) / static_cast<float>(a.value().size());
    t->accumulate(a, trkx::scale(a.value(), c));
  });
}

Var Tape::sum(Var a) {
  Matrix out(1, 1);
  out(0, 0) = static_cast<float>(a.value().sum());
  Tape* t = this;
  return emit(std::move(out), node(a).requires_grad, "sum", [t, a](Node& n) {
    Matrix g(a.value().rows(), a.value().cols(), n.grad(0, 0));
    t->accumulate(a, g);
  });
}

void Tape::backward(Var root) {
  TRKX_CHECK_MSG(!backward_done_, "backward() may run once per tape");
  backward_done_ = true;
  Node& r = node(root);
  TRKX_CHECK_MSG(r.value.rows() == 1 && r.value.cols() == 1,
                 "backward root must be scalar, got " << r.value.shape_str());
  r.grad = Matrix(1, 1, 1.0f);
  TRKX_CHECK(root.index_ < nodes_.size());
  for (std::size_t i = root.index_ + 1; i-- > 0;) {
    Node& n = nodes_[i];
    if (!n.requires_grad || n.grad.empty() || !n.backward) continue;
    // Track whose closure is running so accumulate() can name the op that
    // produced a non-finite gradient under TRKX_CHECK_NUMERICS.
    current_backward_op_ = n.op;
    n.backward(n);
  }
  current_backward_op_ = nullptr;
}

}  // namespace trkx
