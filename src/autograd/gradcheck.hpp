#pragma once

#include <functional>
#include <vector>

#include "tensor/matrix.hpp"

namespace trkx {

/// Result of comparing analytic vs numeric gradients for one input.
struct GradcheckResult {
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  bool passed = false;
};

/// Checks the analytic gradient of `scalar_fn` w.r.t. each matrix in
/// `inputs` against central finite differences.
///
/// `scalar_fn` must build a fresh Tape internally, mark each input as a
/// gradient-requiring leaf, run forward + backward, return the scalar loss
/// value, and write each input's analytic gradient into `grads` (same order
/// as inputs) — the driver perturbs the inputs and re-invokes it.
///
/// Uses double-sided differences with step `eps`; passes when every element
/// satisfies |a - n| <= atol + rtol * |n|.
GradcheckResult gradcheck(
    const std::function<double(const std::vector<Matrix>& inputs,
                               std::vector<Matrix>* grads)>& scalar_fn,
    std::vector<Matrix> inputs, float eps = 1e-3f, float atol = 2e-3f,
    float rtol = 5e-2f);

}  // namespace trkx
