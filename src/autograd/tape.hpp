#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace trkx {

class Tape;

/// Handle to a node on a Tape. Cheap to copy; lifetime is bounded by the
/// owning Tape (one Tape per forward/backward pass in training loops).
class Var {
 public:
  Var() = default;

  const Matrix& value() const;
  const Matrix& grad() const;
  bool requires_grad() const;
  std::size_t rows() const { return value().rows(); }
  std::size_t cols() const { return value().cols(); }
  bool valid() const { return tape_ != nullptr; }

 private:
  friend class Tape;
  Var(Tape* tape, std::size_t index) : tape_(tape), index_(index) {}
  Tape* tape_ = nullptr;
  std::size_t index_ = 0;
};

/// Reverse-mode automatic differentiation tape.
///
/// Records every op during the forward pass; backward() replays the tape in
/// reverse, accumulating gradients into each node. Nodes whose subtree
/// contains no gradient-requiring leaf skip gradient work entirely.
///
/// The op set is exactly what the Exa.TrkX pipeline needs: dense linear
/// algebra for the MLPs plus the two graph primitives (row_gather for
/// MSG indexing, segment_sum for AGG) from Algorithm 1 of the paper.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Record a leaf holding `value`. If requires_grad, backward() will
  /// accumulate into its grad().
  Var leaf(Matrix value, bool requires_grad = false);

  // ---- dense ops ----
  Var matmul(Var a, Var b);
  /// x·w + broadcast bias (bias is 1×out). Fused: one node, one backward.
  Var linear(Var x, Var w, Var bias);
  Var add(Var a, Var b);
  Var sub(Var a, Var b);
  Var hadamard(Var a, Var b);
  Var scale(Var a, float s);
  Var relu(Var a);
  Var tanh(Var a);
  Var sigmoid(Var a);
  /// Row-wise LayerNorm with learned affine (gamma, beta are 1×cols).
  Var layer_norm(Var x, Var gamma, Var beta, float eps = 1e-5f);
  Var concat_cols(const std::vector<Var>& blocks);
  Var slice_cols(Var a, std::size_t start, std::size_t len);
  /// out[i,:] = rows[i,:] · scalars[i,0] — per-row scaling by an m×1
  /// column (the attention-gating primitive: weights each edge message).
  Var scale_rows(Var rows, Var scalars);

  // ---- graph ops ----
  /// Y = A·X for a constant sparse A (the GCN aggregation primitive).
  /// The caller keeps `a` alive for the tape's lifetime; backward
  /// multiplies by Aᵀ.
  Var spmm(const CsrMatrix& a, Var x);
  /// out[i,:] = x[index[i],:]
  Var row_gather(Var x, std::vector<std::uint32_t> index);
  /// out[s,:] = sum_{i: index[i]==s} y[i,:]   (AGG in Algorithm 1)
  Var segment_sum(Var y, std::vector<std::uint32_t> index,
                  std::size_t num_segments);

  // ---- losses (return 1×1 scalars) ----
  /// Binary cross-entropy with logits, numerically stable, mean-reduced.
  /// `labels` in {0,1}; optional per-example weights (empty = all 1);
  /// `pos_weight` scales the positive-class term (class imbalance).
  Var bce_with_logits(Var logits, const std::vector<float>& labels,
                      const std::vector<float>& weights = {},
                      float pos_weight = 1.0f);
  /// Hinge contrastive loss over row pairs (metric-learning stage):
  /// with dᵢ = ‖aᵢ − bᵢ‖, the per-pair loss is dᵢ² for positives and
  /// max(0, margin − dᵢ)² for negatives; mean-reduced. `labels` in {0,1}.
  Var contrastive_pair_loss(Var a, Var b, const std::vector<float>& labels,
                            float margin);

  /// Mean of squared elements (used by gradcheck and the embedding loss).
  Var mean_square(Var a);
  /// Sum of all elements.
  Var sum(Var a);

  /// Run reverse-mode accumulation from `root` (must be 1×1). Seeds the
  /// root gradient with 1. May be called once per tape.
  void backward(Var root);

  /// True if backward() produced a gradient for v (a node can legitimately
  /// receive none when its branch does not reach the loss).
  bool has_grad(Var v) const { return !node(v).grad.empty(); }

  /// Number of recorded nodes (for tests / memory accounting).
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Total floats held in node values — the "activation memory" that the
  /// paper's full-graph mode blows up on; exposed for the memory bench.
  std::size_t activation_floats() const;

 private:
  struct Node {
    Matrix value;
    Matrix grad;            // lazily sized on first accumulation
    bool requires_grad = false;
    const char* op = "leaf";  // static op name, for numerics diagnostics
    std::function<void(Node&)> backward;  // reads node.grad, pushes to parents
  };

  Node& node(Var v) {
    TRKX_CHECK(v.tape_ == this && v.index_ < nodes_.size());
    return nodes_[v.index_];
  }
  const Node& node(Var v) const {
    TRKX_CHECK(v.tape_ == this && v.index_ < nodes_.size());
    return nodes_[v.index_];
  }

  /// `op` must be a string literal (stored, never copied). Under
  /// TRKX_CHECK_NUMERICS (util/numerics.hpp) every computed op's output is
  /// verified finite here, and every gradient contribution in accumulate().
  Var emit(Matrix value, bool requires_grad, const char* op,
           std::function<void(Node&)> backward);
  /// Accumulate g into the node's grad. Taking g by value lets backward
  /// closures hand over their temporaries: the first contribution to a
  /// node is a buffer move, not a copy, so the pool sees one allocation
  /// per gradient instead of two.
  void accumulate(Var v, Matrix g);

  friend class Var;
  std::deque<Node> nodes_;
  bool backward_done_ = false;
  const char* current_backward_op_ = nullptr;  // op whose closure is running
};

}  // namespace trkx
