#include "autograd/gradcheck.hpp"

#include <cmath>

#include "util/error.hpp"

namespace trkx {

GradcheckResult gradcheck(
    const std::function<double(const std::vector<Matrix>& inputs,
                               std::vector<Matrix>* grads)>& scalar_fn,
    std::vector<Matrix> inputs, float eps, float atol, float rtol) {
  std::vector<Matrix> analytic;
  scalar_fn(inputs, &analytic);
  TRKX_CHECK_MSG(analytic.size() == inputs.size(),
                 "scalar_fn must return one gradient per input");

  GradcheckResult result;
  result.passed = true;
  for (std::size_t which = 0; which < inputs.size(); ++which) {
    Matrix& x = inputs[which];
    TRKX_CHECK(analytic[which].same_shape(x));
    for (std::size_t i = 0; i < x.size(); ++i) {
      const float orig = x.data()[i];
      x.data()[i] = orig + eps;
      const double fp = scalar_fn(inputs, nullptr);
      x.data()[i] = orig - eps;
      const double fm = scalar_fn(inputs, nullptr);
      x.data()[i] = orig;
      const float numeric =
          static_cast<float>((fp - fm) / (2.0 * static_cast<double>(eps)));
      const float a = analytic[which].data()[i];
      const float abs_err = std::fabs(a - numeric);
      const float rel_err =
          abs_err / std::max(1e-8f, std::fabs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > atol + rtol * std::fabs(numeric)) result.passed = false;
    }
  }
  return result;
}

}  // namespace trkx
