#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace trkx {

/// Test/bench graph generators (directed edges; symmetrise for sampling).

/// G(n, p) Erdős–Rényi: each ordered pair (u, v), u != v, independently
/// present with probability p.
Graph erdos_renyi(std::size_t n, double p, Rng& rng);

/// Each vertex gets `degree` out-edges to uniformly random distinct
/// targets (a fast sparse random graph for large n).
Graph random_regular_out(std::size_t n, std::size_t degree, Rng& rng);

/// Path 0→1→…→n-1.
Graph path_graph(std::size_t n);

/// Cycle 0→1→…→n-1→0.
Graph cycle_graph(std::size_t n);

/// rows×cols grid with right and down edges.
Graph grid_graph(std::size_t rows, std::size_t cols);

/// `count` disjoint cliques of size `clique_size` (directed i<j edges).
Graph disjoint_cliques(std::size_t count, std::size_t clique_size);

}  // namespace trkx
