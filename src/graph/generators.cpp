#include "graph/generators.hpp"

namespace trkx {

Graph erdos_renyi(std::size_t n, double p, Rng& rng) {
  std::vector<Edge> edges;
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t v = 0; v < n; ++v)
      if (u != v && rng.bernoulli(p)) edges.push_back({u, v});
  return Graph(n, std::move(edges));
}

Graph random_regular_out(std::size_t n, std::size_t degree, Rng& rng) {
  TRKX_CHECK(degree < n);
  std::vector<Edge> edges;
  edges.reserve(n * degree);
  for (std::uint32_t u = 0; u < n; ++u) {
    auto targets = rng.sample_without_replacement(
        static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(degree + 1));
    std::size_t added = 0;
    for (std::uint32_t v : targets) {
      if (v == u || added == degree) continue;
      edges.push_back({u, v});
      ++added;
    }
    // We drew degree+1 candidates, so even if u was among them we still
    // have `degree` distinct non-self targets.
  }
  return Graph(n, std::move(edges));
}

Graph path_graph(std::size_t n) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return Graph(n, std::move(edges));
}

Graph cycle_graph(std::size_t n) {
  TRKX_CHECK(n >= 3);
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i)
    edges.push_back({i, static_cast<std::uint32_t>((i + 1) % n)});
  return Graph(n, std::move(edges));
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  TRKX_CHECK(cols == 0 || rows <= 0xffffffffu / cols);  // ids fit uint32
  std::vector<Edge> edges;
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return Graph(rows * cols, std::move(edges));
}

Graph disjoint_cliques(std::size_t count, std::size_t clique_size) {
  TRKX_CHECK(clique_size == 0 || count <= 0xffffffffu / clique_size);
  std::vector<Edge> edges;
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t base = static_cast<std::uint32_t>(k * clique_size);
    for (std::uint32_t i = 0; i < clique_size; ++i)
      for (std::uint32_t j = i + 1; j < clique_size; ++j)
        edges.push_back({base + i, base + j});
  }
  return Graph(count * clique_size, std::move(edges));
}

}  // namespace trkx
