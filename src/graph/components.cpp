#include "graph/components.hpp"

#include <queue>

#include "util/error.hpp"

namespace trkx {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  for (std::size_t i = 0; i < n; ++i)
    parent_[i] = static_cast<std::uint32_t>(i);
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  TRKX_CHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

std::vector<std::vector<std::uint32_t>> Components::groups() const {
  std::vector<std::vector<std::uint32_t>> g(count);
  for (std::size_t v = 0; v < label.size(); ++v)
    g[label[v]].push_back(static_cast<std::uint32_t>(v));
  return g;
}

Components connected_components(const Graph& graph,
                                const std::vector<char>& edge_mask) {
  TRKX_CHECK(edge_mask.empty() || edge_mask.size() == graph.num_edges());
  UnionFind uf(graph.num_vertices());
  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    if (!edge_mask.empty() && !edge_mask[i]) continue;
    uf.unite(graph.edge(i).src, graph.edge(i).dst);
  }
  Components out;
  out.label.assign(graph.num_vertices(), 0);
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::uint32_t> root_to_label(graph.num_vertices(), kUnset);
  std::uint32_t next = 0;
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    const std::uint32_t r = uf.find(static_cast<std::uint32_t>(v));
    if (root_to_label[r] == kUnset) root_to_label[r] = next++;
    out.label[v] = root_to_label[r];
  }
  out.count = next;
  return out;
}

Components connected_components_bfs(const Graph& graph,
                                    const std::vector<char>& edge_mask) {
  TRKX_CHECK(edge_mask.empty() || edge_mask.size() == graph.num_edges());
  const std::size_t n = graph.num_vertices();
  // Build an undirected adjacency list over unmasked edges.
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    if (!edge_mask.empty() && !edge_mask[i]) continue;
    const Edge& e = graph.edge(i);
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  Components out;
  constexpr std::uint32_t kUnset = 0xffffffffu;
  out.label.assign(n, kUnset);
  std::uint32_t next = 0;
  std::queue<std::uint32_t> q;
  for (std::size_t start = 0; start < n; ++start) {
    if (out.label[start] != kUnset) continue;
    out.label[start] = next;
    q.push(static_cast<std::uint32_t>(start));
    while (!q.empty()) {
      const std::uint32_t v = q.front();
      q.pop();
      for (std::uint32_t u : adj[v]) {
        if (out.label[u] == kUnset) {
          out.label[u] = next;
          q.push(u);
        }
      }
    }
    ++next;
  }
  out.count = next;
  return out;
}

}  // namespace trkx
