#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace trkx {

/// Directed edge between vertex indices.
struct Edge {
  std::uint32_t src;
  std::uint32_t dst;
  bool operator==(const Edge&) const = default;
};

/// A static directed graph with a fixed edge order.
///
/// Event graphs in the Exa.TrkX pipeline are directed (inner-detector hit →
/// outer-detector hit) and carry per-edge data (features, truth labels,
/// GNN scores) in arrays parallel to edges(). The class therefore keeps
/// edges in their construction order and exposes index-based lookups so
/// subgraphs can map their edges back to the parent's edge attributes.
class Graph {
 public:
  Graph() = default;
  Graph(std::size_t num_vertices, std::vector<Edge> edges);

  std::size_t num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(std::size_t i) const { return edges_[i]; }

  /// Source/destination index arrays (A.rows / A.cols in Algorithm 1),
  /// ready for row_gather / segment_sum.
  std::vector<std::uint32_t> src_indices() const;
  std::vector<std::uint32_t> dst_indices() const;

  /// Directed adjacency with value 1 per edge (duplicates summed).
  CsrMatrix adjacency() const;
  /// Symmetrised 0/1 adjacency pattern of A + Aᵀ (used for sampling:
  /// random walks must traverse edges in both directions).
  CsrMatrix symmetric_adjacency() const;

  /// Edge index of (src, dst), or kNoEdge; the lowest-index edge wins for
  /// parallel edges. O(log out_degree(src)); thread-safe (index is built
  /// eagerly at construction).
  static constexpr std::uint32_t kNoEdge = 0xffffffffu;
  std::uint32_t find_edge(std::uint32_t src, std::uint32_t dst) const;

  /// One out-edge as seen from the CSR index.
  struct OutEdge {
    std::uint32_t dst;
    std::uint32_t edge;  ///< index into edges()
  };
  /// Out-edges of v sorted by (dst, edge index). Enables O(Σdeg) induced
  /// subgraph extraction instead of scanning the whole edge list.
  std::span<const OutEdge> out_edges(std::uint32_t v) const;

  /// Out-degree + in-degree per vertex.
  std::vector<std::uint32_t> total_degrees() const;
  double average_degree() const;

 private:
  void build_index();

  std::size_t num_vertices_ = 0;
  std::vector<Edge> edges_;
  // CSR out-edge index: out_row_ptr_[v] .. out_row_ptr_[v+1] slices
  // out_entries_, sorted by (dst, edge) within each row.
  std::vector<std::uint64_t> out_row_ptr_;
  std::vector<OutEdge> out_entries_;
};

/// An induced subgraph plus the maps back to its parent graph.
struct InducedSubgraph {
  Graph graph;  ///< vertices renumbered 0..k-1
  std::vector<std::uint32_t> vertex_map;  ///< sub vertex -> parent vertex
  std::vector<std::uint32_t> edge_map;    ///< sub edge -> parent edge index
};

/// Subgraph induced by `vertices` (parent indices; must be distinct).
/// Keeps every parent edge whose endpoints are both selected, preserving
/// parent edge order.
InducedSubgraph induced_subgraph(const Graph& parent,
                                 const std::vector<std::uint32_t>& vertices);

/// Disjoint union: relabels each component's vertices into one graph.
/// vertex/edge maps are concatenations of the parts' maps offset into the
/// shared parent (all parts must reference the same parent).
InducedSubgraph disjoint_union(const std::vector<InducedSubgraph>& parts);

}  // namespace trkx
