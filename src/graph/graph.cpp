#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace trkx {

Graph::Graph(std::size_t num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    TRKX_CHECK_MSG(e.src < num_vertices_ && e.dst < num_vertices_,
                   "edge (" << e.src << "," << e.dst
                            << ") out of range for n=" << num_vertices_);
  }
  build_index();
}

void Graph::build_index() {
  // Counting sort by src, then sort each row by (dst, edge index).
  out_row_ptr_.assign(num_vertices_ + 1, 0);
  for (const Edge& e : edges_) ++out_row_ptr_[e.src + 1];
  for (std::size_t v = 0; v < num_vertices_; ++v)
    out_row_ptr_[v + 1] += out_row_ptr_[v];
  out_entries_.resize(edges_.size());
  std::vector<std::uint64_t> cursor(out_row_ptr_.begin(),
                                    out_row_ptr_.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    out_entries_[cursor[edges_[i].src]++] =
        OutEdge{edges_[i].dst, static_cast<std::uint32_t>(i)};
  }
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    std::sort(out_entries_.begin() +
                  static_cast<std::ptrdiff_t>(out_row_ptr_[v]),
              out_entries_.begin() +
                  static_cast<std::ptrdiff_t>(out_row_ptr_[v + 1]),
              [](const OutEdge& a, const OutEdge& b) {
                return a.dst != b.dst ? a.dst < b.dst : a.edge < b.edge;
              });
  }
}

std::span<const Graph::OutEdge> Graph::out_edges(std::uint32_t v) const {
  TRKX_CHECK(v < num_vertices_);
  return {out_entries_.data() + out_row_ptr_[v],
          static_cast<std::size_t>(out_row_ptr_[v + 1] - out_row_ptr_[v])};
}

std::vector<std::uint32_t> Graph::src_indices() const {
  std::vector<std::uint32_t> idx(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) idx[i] = edges_[i].src;
  return idx;
}

std::vector<std::uint32_t> Graph::dst_indices() const {
  std::vector<std::uint32_t> idx(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) idx[i] = edges_[i].dst;
  return idx;
}

CsrMatrix Graph::adjacency() const {
  std::vector<Triplet> trips;
  trips.reserve(edges_.size());
  for (const Edge& e : edges_) trips.push_back({e.src, e.dst, 1.0f});
  return CsrMatrix::from_triplets(num_vertices_, num_vertices_,
                                  std::move(trips));
}

CsrMatrix Graph::symmetric_adjacency() const {
  std::vector<Triplet> trips;
  trips.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    if (e.src == e.dst) continue;  // self-loops add nothing to walks
    trips.push_back({e.src, e.dst, 1.0f});
    trips.push_back({e.dst, e.src, 1.0f});
  }
  CsrMatrix a = CsrMatrix::from_triplets(num_vertices_, num_vertices_,
                                         std::move(trips));
  // Collapse summed duplicates back to a 0/1 pattern.
  for (float& v : a.values()) v = 1.0f;
  return a;
}

std::uint32_t Graph::find_edge(std::uint32_t src, std::uint32_t dst) const {
  if (src >= num_vertices_ || dst >= num_vertices_) return kNoEdge;
  const auto row = out_edges(src);
  const auto it = std::lower_bound(
      row.begin(), row.end(), dst,
      [](const OutEdge& e, std::uint32_t d) { return e.dst < d; });
  if (it == row.end() || it->dst != dst) return kNoEdge;
  return it->edge;  // lowest edge index (rows sorted by (dst, edge))
}

std::vector<std::uint32_t> Graph::total_degrees() const {
  std::vector<std::uint32_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.src];
    ++deg[e.dst];
  }
  return deg;
}

double Graph::average_degree() const {
  if (num_vertices_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(num_vertices_);
}

InducedSubgraph induced_subgraph(const Graph& parent,
                                 const std::vector<std::uint32_t>& vertices) {
  // Hash remap keeps this O(Σ out_degree) — independent of the parent's
  // total edge count, which matters when ShaDow extracts hundreds of small
  // components per minibatch from a large event graph.
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(vertices.size() * 2);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    TRKX_CHECK(vertices[i] < parent.num_vertices());
    const bool inserted =
        remap.emplace(vertices[i], static_cast<std::uint32_t>(i)).second;
    TRKX_CHECK_MSG(inserted, "duplicate vertex in induced_subgraph selection");
  }
  // Collect internal edges sorted by parent edge index (preserving the
  // parent's edge order in the output, matching the full-scan semantics).
  std::vector<std::pair<std::uint32_t, Edge>> found;  // (parent edge, sub edge)
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (const Graph::OutEdge& oe : parent.out_edges(vertices[i])) {
      const auto it = remap.find(oe.dst);
      if (it == remap.end()) continue;
      found.emplace_back(oe.edge,
                         Edge{static_cast<std::uint32_t>(i), it->second});
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  InducedSubgraph out;
  out.vertex_map = vertices;
  std::vector<Edge> sub_edges;
  sub_edges.reserve(found.size());
  out.edge_map.reserve(found.size());
  for (const auto& [pe, e] : found) {
    sub_edges.push_back(e);
    out.edge_map.push_back(pe);
  }
  out.graph = Graph(vertices.size(), std::move(sub_edges));
  return out;
}

InducedSubgraph disjoint_union(const std::vector<InducedSubgraph>& parts) {
  InducedSubgraph out;
  std::size_t n = 0, m = 0;
  for (const auto& p : parts) {
    n += p.graph.num_vertices();
    m += p.graph.num_edges();
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  out.vertex_map.reserve(n);
  out.edge_map.reserve(m);
  std::uint32_t vert_off = 0;
  for (const auto& p : parts) {
    for (const Edge& e : p.graph.edges())
      edges.push_back({e.src + vert_off, e.dst + vert_off});
    out.vertex_map.insert(out.vertex_map.end(), p.vertex_map.begin(),
                          p.vertex_map.end());
    out.edge_map.insert(out.edge_map.end(), p.edge_map.begin(),
                        p.edge_map.end());
    TRKX_CHECK(p.graph.num_vertices() <= 0xffffffffu - vert_off);
    vert_off += static_cast<std::uint32_t>(p.graph.num_vertices());
  }
  out.graph = Graph(n, std::move(edges));
  return out;
}

}  // namespace trkx
