#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace trkx {

/// Union–find (disjoint set) with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::uint32_t find(std::uint32_t x);
  /// Returns true if the sets were distinct.
  bool unite(std::uint32_t a, std::uint32_t b);
  std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_;
};

/// Result of connected-components labelling.
struct Components {
  std::vector<std::uint32_t> label;  ///< component id per vertex, 0..count-1
  std::size_t count = 0;
  /// Vertices grouped by component (sorted within each group).
  std::vector<std::vector<std::uint32_t>> groups() const;
};

/// Connected components treating edges as undirected. If `edge_mask` is
/// non-empty it must have one bool per edge; only edges with mask true are
/// used. This is the paper's stage-5 track builder: after the GNN removes
/// non-track edges, each remaining component is a track candidate.
Components connected_components(const Graph& graph,
                                const std::vector<char>& edge_mask = {});

/// BFS reference implementation (same contract); used to cross-check.
Components connected_components_bfs(const Graph& graph,
                                    const std::vector<char>& edge_mask = {});

}  // namespace trkx
