#include "sampling/layerwise.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace trkx {

LayerwiseSampler::LayerwiseSampler(const Graph& parent,
                                   const LayerwiseConfig& config)
    : parent_(&parent),
      sym_adj_(parent.symmetric_adjacency()),
      config_(config) {
  TRKX_CHECK(config.depth >= 1);
  TRKX_CHECK(config.budget >= 1);
}

std::vector<std::uint32_t> LayerwiseSampler::sample_vertex_set(
    const std::vector<std::uint32_t>& batch, Rng& rng) const {
  TRKX_CHECK(!batch.empty());
  std::vector<std::uint32_t> visited = batch;
  for (std::uint32_t b : batch) TRKX_CHECK(b < parent_->num_vertices());
  std::vector<std::uint32_t> frontier = batch;

  for (std::size_t level = 0; level < config_.depth; ++level) {
    // Count frontier connections per candidate vertex: the LADIES
    // importance weight (restricted to the frontier's neighbourhood).
    std::vector<std::uint32_t> candidates;
    std::vector<float> weight;
    {
      // Accumulate multiplicity of each neighbour across the frontier.
      std::vector<std::pair<std::uint32_t, float>> counts;
      for (std::uint32_t v : frontier) {
        for (std::uint64_t k = sym_adj_.row_ptr()[v];
             k < sym_adj_.row_ptr()[v + 1]; ++k)
          counts.emplace_back(sym_adj_.col_idx()[k], 1.0f);
      }
      std::sort(counts.begin(), counts.end());
      for (std::size_t i = 0; i < counts.size();) {
        std::size_t j = i;
        float w = 0.0f;
        while (j < counts.size() && counts[j].first == counts[i].first) {
          w += counts[j].second;
          ++j;
        }
        candidates.push_back(counts[i].first);
        weight.push_back(w);
        i = j;
      }
    }
    if (candidates.empty()) break;

    std::vector<std::uint32_t> drawn;
    if (candidates.size() <= config_.budget) {
      drawn = candidates;
    } else {
      // Weighted sampling without replacement (Efraimidis–Spirakis keys).
      std::vector<std::pair<double, std::uint32_t>> keys;
      keys.reserve(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double u = std::max(1e-300, rng.uniform());
        // Floor the weight: a zero-weight candidate (all parent edges
        // carry zero probability mass) gets key -> -inf, i.e. it is
        // drawn only when the budget exceeds the positive-weight pool.
        const double w = std::max(1e-12, static_cast<double>(weight[i]));
        keys.emplace_back(std::log(u) / w, candidates[i]);
      }
      std::partial_sort(
          keys.begin(),
          keys.begin() + static_cast<std::ptrdiff_t>(config_.budget),
          keys.end(),
          [](const auto& a, const auto& b) { return a.first > b.first; });
      drawn.reserve(config_.budget);
      for (std::size_t i = 0; i < config_.budget; ++i)
        drawn.push_back(keys[i].second);
    }
    visited.insert(visited.end(), drawn.begin(), drawn.end());
    frontier = std::move(drawn);
  }
  std::sort(visited.begin(), visited.end());
  visited.erase(std::unique(visited.begin(), visited.end()), visited.end());
  return visited;
}

ShadowSample LayerwiseSampler::sample(const std::vector<std::uint32_t>& batch,
                                      Rng& rng) const {
  const auto verts = sample_vertex_set(batch, rng);
  ShadowSample out;
  out.sub = induced_subgraph(*parent_, verts);
  out.roots.reserve(batch.size());
  for (std::uint32_t b : batch) {
    const auto it = std::lower_bound(verts.begin(), verts.end(), b);
    TRKX_CHECK(it != verts.end() && *it == b);
    out.roots.push_back(static_cast<std::uint32_t>(it - verts.begin()));
  }
  // Single shared component.
  out.component_of.assign(verts.size(), 0);
  return out;
}

}  // namespace trkx
