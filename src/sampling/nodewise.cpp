#include "sampling/nodewise.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace trkx {

NodewiseSampler::NodewiseSampler(const Graph& parent,
                                 const NodewiseConfig& config)
    : parent_(&parent),
      sym_adj_(parent.symmetric_adjacency()),
      config_(config) {
  TRKX_CHECK(!config.fanouts.empty());
  for (std::size_t f : config.fanouts) TRKX_CHECK(f >= 1);
}

std::vector<std::uint32_t> NodewiseSampler::walk_vertex_set(
    std::uint32_t root, Rng& rng) const {
  TRKX_CHECK(root < parent_->num_vertices());
  std::vector<std::uint32_t> visited{root};
  std::vector<std::uint32_t> frontier{root};
  for (std::size_t fanout : config_.fanouts) {
    std::vector<std::uint32_t> next;
    for (std::uint32_t v : frontier) {
      const std::uint64_t begin = sym_adj_.row_ptr()[v];
      const std::uint64_t deg = sym_adj_.row_ptr()[v + 1] - begin;
      if (deg == 0) continue;
      if (deg <= fanout) {
        for (std::uint64_t k = 0; k < deg; ++k)
          next.push_back(sym_adj_.col_idx()[begin + k]);
      } else {
        auto offs = rng.sample_without_replacement(
            static_cast<std::uint32_t>(deg),
            static_cast<std::uint32_t>(fanout));
        for (std::uint32_t off : offs)
          next.push_back(sym_adj_.col_idx()[begin + off]);
      }
    }
    visited.insert(visited.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  std::sort(visited.begin(), visited.end());
  visited.erase(std::unique(visited.begin(), visited.end()), visited.end());
  return visited;
}

ShadowSample NodewiseSampler::sample(const std::vector<std::uint32_t>& batch,
                                     Rng& rng) const {
  std::vector<std::vector<std::uint32_t>> sets;
  sets.reserve(batch.size());
  for (std::uint32_t b : batch) sets.push_back(walk_vertex_set(b, rng));
  return assemble_shadow_sample(*parent_, batch, sets);
}

}  // namespace trkx
