#pragma once

#include "sampling/shadow.hpp"

namespace trkx {

/// Layer-wise importance sampler in the LADIES family (Zou et al., cited
/// as [16] in the paper's sampler taxonomy).
///
/// Where node-wise samplers draw neighbours per *vertex* (receptive field
/// grows multiplicatively), a layer-wise sampler draws a fixed *budget* of
/// vertices per level for the whole batch, with inclusion probability
/// proportional to the number of frontier connections (degree-based
/// importance). The receptive field is therefore linear in depth.
///
/// Output shape: the entire batch shares one induced subgraph (one
/// component), expressed as a ShadowSample with num_components() == batch
/// size but a shared vertex set — callers treat it like any other sample:
/// train on the edges of sample.sub.graph.
struct LayerwiseConfig {
  std::size_t depth = 2;          ///< number of sampling levels
  std::size_t budget = 512;       ///< vertices kept per level
};

class LayerwiseSampler {
 public:
  LayerwiseSampler(const Graph& parent, const LayerwiseConfig& config);

  /// The union vertex set (batch + all levels' draws), sorted.
  std::vector<std::uint32_t> sample_vertex_set(
      const std::vector<std::uint32_t>& batch, Rng& rng) const;

  /// One induced subgraph over the union set; roots locate the batch
  /// vertices inside it.
  ShadowSample sample(const std::vector<std::uint32_t>& batch,
                      Rng& rng) const;

  const LayerwiseConfig& config() const { return config_; }

 private:
  const Graph* parent_;
  CsrMatrix sym_adj_;
  LayerwiseConfig config_;
};

}  // namespace trkx
