#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace trkx {

/// ShaDow hyperparameters (paper defaults: depth 3, fanout 6).
struct ShadowConfig {
  std::size_t depth = 3;   ///< d: random-walk/frontier expansion depth
  std::size_t fanout = 6;  ///< s: distinct neighbours kept per vertex
  /// Matrix sampler only: run the Q·A products and subgraph extraction
  /// through the general SpGEMM kernels (the paper's literal formulation)
  /// instead of the specialised row/column-selection fast path. Both paths
  /// produce identical samples; the fast path exploits Q having one
  /// nonzero per row (Q·A ≡ row selection), which is how a tuned
  /// implementation realises the same algebra.
  bool generic_spgemm = false;
  /// Matrix sampler fast path only: fuse row extraction, row
  /// normalisation, and neighbour drawing into a single pass over the
  /// adjacency's CSR rows (no intermediate P matrix). Bit-identical
  /// samples; ignored when generic_spgemm is set (that path exists to
  /// exercise the unfused algebra).
  bool fused_sampling = true;
};

/// One sampled minibatch: the disjoint union of every batch vertex's
/// induced subgraph, with maps back to the parent graph.
///
/// `sub.graph` has exactly one component per batch vertex (components are
/// laid out contiguously in batch order); `component_of[v]` gives the
/// batch position owning sub-vertex v; `sub.vertex_map` / `sub.edge_map`
/// translate back to parent vertex/edge indices so features and labels can
/// be gathered.
struct ShadowSample {
  InducedSubgraph sub;
  std::vector<std::uint32_t> roots;         ///< sub-vertex of each batch vertex
  std::vector<std::uint32_t> component_of;  ///< per sub-vertex batch position

  std::size_t num_components() const { return roots.size(); }
};

/// Reference ShaDow sampler — a faithful implementation of the paper's
/// Algorithm 2 (per-vertex frontier expansion, one induced subgraph per
/// batch vertex, components appended into one output graph).
///
/// Walks traverse the symmetrised adjacency: a track edge must be
/// followable in both directions or inner hits would never reach outer
/// ones.
class ShadowSampler {
 public:
  ShadowSampler(const Graph& parent, const ShadowConfig& config);

  /// Sample the induced-subgraph union for `batch` (parent vertex ids).
  ShadowSample sample(const std::vector<std::uint32_t>& batch, Rng& rng) const;

  /// The vertex set one batch vertex's walk visits (root included,
  /// deduplicated, sorted). Exposed for tests and for the matrix-sampler
  /// equivalence checks.
  std::vector<std::uint32_t> walk_vertex_set(std::uint32_t root,
                                             Rng& rng) const;

  const ShadowConfig& config() const { return config_; }

 private:
  const Graph* parent_;
  CsrMatrix sym_adj_;
  ShadowConfig config_;
};

/// Assemble a ShadowSample from per-root vertex sets (shared by both
/// sampler implementations so their outputs are structurally identical).
ShadowSample assemble_shadow_sample(
    const Graph& parent, const std::vector<std::uint32_t>& batch,
    const std::vector<std::vector<std::uint32_t>>& vertex_sets);

/// Partition [0, n) into shuffled minibatches of `batch_size` (last batch
/// may be smaller). The unit of epoch iteration for minibatch training.
std::vector<std::vector<std::uint32_t>> make_minibatches(std::size_t n,
                                                         std::size_t batch_size,
                                                         Rng& rng);

}  // namespace trkx
