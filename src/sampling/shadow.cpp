#include "sampling/shadow.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace trkx {

ShadowSampler::ShadowSampler(const Graph& parent, const ShadowConfig& config)
    : parent_(&parent),
      sym_adj_(parent.symmetric_adjacency()),
      config_(config) {
  TRKX_CHECK(config.depth >= 1);
  TRKX_CHECK(config.fanout >= 1);
}

std::vector<std::uint32_t> ShadowSampler::walk_vertex_set(std::uint32_t root,
                                                          Rng& rng) const {
  TRKX_CHECK(root < parent_->num_vertices());
  std::vector<std::uint32_t> visited{root};
  std::vector<std::uint32_t> frontier{root};
  for (std::size_t level = 0; level < config_.depth; ++level) {
    std::vector<std::uint32_t> next;
    for (std::uint32_t v : frontier) {
      // s distinct neighbours of v, uniformly (all of them if deg <= s).
      const std::uint64_t begin = sym_adj_.row_ptr()[v];
      const std::uint64_t deg = sym_adj_.row_ptr()[v + 1] - begin;
      if (deg == 0) continue;
      if (deg <= config_.fanout) {
        for (std::uint64_t k = 0; k < deg; ++k)
          next.push_back(sym_adj_.col_idx()[begin + k]);
      } else {
        auto offs = rng.sample_without_replacement(
            static_cast<std::uint32_t>(deg),
            static_cast<std::uint32_t>(config_.fanout));
        for (std::uint32_t off : offs)
          next.push_back(sym_adj_.col_idx()[begin + off]);
      }
    }
    visited.insert(visited.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  std::sort(visited.begin(), visited.end());
  visited.erase(std::unique(visited.begin(), visited.end()), visited.end());
  return visited;
}

ShadowSample ShadowSampler::sample(const std::vector<std::uint32_t>& batch,
                                   Rng& rng) const {
  std::vector<std::vector<std::uint32_t>> sets;
  sets.reserve(batch.size());
  {
    TRKX_TRACE_SPAN("shadow.walk", "sample");
    for (std::uint32_t b : batch) sets.push_back(walk_vertex_set(b, rng));
  }
  metrics().counter("sample.walks").add(batch.size());
  TRKX_TRACE_SPAN("shadow.assemble", "sample");
  return assemble_shadow_sample(*parent_, batch, sets);
}

ShadowSample assemble_shadow_sample(
    const Graph& parent, const std::vector<std::uint32_t>& batch,
    const std::vector<std::vector<std::uint32_t>>& vertex_sets) {
  TRKX_CHECK(batch.size() == vertex_sets.size());
  std::vector<InducedSubgraph> parts;
  parts.reserve(batch.size());
  ShadowSample out;
  out.roots.reserve(batch.size());
  std::uint32_t vert_off = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& verts = vertex_sets[i];
    // Root position within its (sorted) vertex set.
    const auto it = std::lower_bound(verts.begin(), verts.end(), batch[i]);
    TRKX_CHECK_MSG(it != verts.end() && *it == batch[i],
                   "vertex set must contain its root");
    out.roots.push_back(vert_off +
                        static_cast<std::uint32_t>(it - verts.begin()));
    for (std::size_t v = 0; v < verts.size(); ++v)
      out.component_of.push_back(static_cast<std::uint32_t>(i));
    parts.push_back(induced_subgraph(parent, verts));
    vert_off += static_cast<std::uint32_t>(verts.size());
  }
  out.sub = disjoint_union(parts);
  return out;
}

std::vector<std::vector<std::uint32_t>> make_minibatches(
    std::size_t n, std::size_t batch_size, Rng& rng) {
  TRKX_CHECK(batch_size > 0);
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  rng.shuffle(perm);
  std::vector<std::vector<std::uint32_t>> batches;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t len = std::min(batch_size, n - start);
    batches.emplace_back(perm.begin() + static_cast<std::ptrdiff_t>(start),
                         perm.begin() + static_cast<std::ptrdiff_t>(start + len));
  }
  return batches;
}

}  // namespace trkx
