#pragma once

#include "sampling/shadow.hpp"

namespace trkx {

/// Node-wise neighbour sampler in the GraphSAGE family (Hamilton et al.,
/// cited as [8] in the paper's sampler taxonomy).
///
/// Unlike ShaDow's single fanout, node-wise sampling draws a *per-level*
/// fanout: level l keeps up to fanouts[l] neighbours of each frontier
/// vertex. The union of all levels' draws forms the receptive field; as
/// in our ShaDow implementation, the output is the induced subgraph per
/// batch vertex so the three sampler families are directly comparable
/// (same ShadowSample structure, same downstream training path).
struct NodewiseConfig {
  /// Per-level fanouts, outermost level first (e.g. {10, 5} for a
  /// 2-layer receptive field). Must be non-empty.
  std::vector<std::size_t> fanouts{10, 5};
};

class NodewiseSampler {
 public:
  NodewiseSampler(const Graph& parent, const NodewiseConfig& config);

  ShadowSample sample(const std::vector<std::uint32_t>& batch,
                      Rng& rng) const;
  std::vector<std::uint32_t> walk_vertex_set(std::uint32_t root,
                                             Rng& rng) const;

  const NodewiseConfig& config() const { return config_; }

 private:
  const Graph* parent_;
  CsrMatrix sym_adj_;
  NodewiseConfig config_;
};

}  // namespace trkx
