#include "sampling/matrix_shadow.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sparse/sample.hpp"
#include "sparse/spgemm.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace trkx {

void BulkSampleStats::merge(const BulkSampleStats& other) {
  spgemm_calls += other.spgemm_calls;
  frontier_rows += other.frontier_rows;
  sampled_nnz += other.sampled_nnz;
  spgemm_seconds += other.spgemm_seconds;
  sample_seconds += other.sample_seconds;
  extract_seconds += other.extract_seconds;
}

MatrixShadowSampler::MatrixShadowSampler(const Graph& parent,
                                         const ShadowConfig& config)
    : parent_(&parent),
      sym_adj_(parent.symmetric_adjacency()),
      dir_adj_(parent.adjacency()),
      config_(config) {
  TRKX_CHECK(config.depth >= 1);
  TRKX_CHECK(config.fanout >= 1);
}

std::vector<std::vector<std::uint32_t>> MatrixShadowSampler::run_levels(
    const std::vector<std::uint32_t>& roots, Rng& rng,
    BulkSampleStats* stats) const {
  const std::size_t n = parent_->num_vertices();
  const std::size_t num_roots = roots.size();

  // visited[r] accumulates the F row of root r (root always included).
  std::vector<std::vector<std::uint32_t>> visited(num_roots);
  for (std::size_t r = 0; r < num_roots; ++r) {
    TRKX_CHECK(roots[r] < n);
    visited[r].push_back(roots[r]);
  }

  // Q^d: one nonzero per row at each root's column.
  std::vector<std::uint32_t> frontier = roots;  // column of each Q row
  std::vector<std::uint32_t> row_root(num_roots);
  for (std::size_t r = 0; r < num_roots; ++r)
    row_root[r] = static_cast<std::uint32_t>(r);

  // One independent stream per root, derived sequentially from the
  // caller's rng. A root's draws then depend only on its own stream, so
  // the grouped sample_rows can sample roots on any thread in any order
  // and still reproduce the serial result bit for bit.
  std::vector<Rng> root_rngs;
  root_rngs.reserve(num_roots);
  for (std::size_t r = 0; r < num_roots; ++r) root_rngs.push_back(rng.split());

  WallTimer timer;
  const bool fused = config_.fused_sampling && !config_.generic_spgemm;
  for (std::size_t level = 0; level < config_.depth; ++level) {
    if (frontier.empty()) break;
    CsrMatrix sampled;
    if (fused) {
      // Fused dataflow: row extraction (P = Q·A ≡ row selection of A),
      // row normalisation, and the neighbour draw all happen in one pass
      // over the adjacency's CSR rows — P is never materialised. Samples
      // are bit-identical to the unfused path below.
      timer.reset();
      {
        TRKX_TRACE_SPAN("shadow.fused_draw", "sample");
        sampled = sample_neighbors_fused(sym_adj_, frontier, config_.fanout,
                                         row_root, root_rngs);
      }
      metrics().counter("sample.spgemm_calls").add(1);
      metrics().counter("sample.frontier_rows").add(frontier.size());
      metrics().counter("sample.sampled_nnz").add(sampled.nnz());
      if (stats) {
        // The whole fused pass is draw time; extraction cost no longer
        // exists as a separate phase.
        stats->sample_seconds += timer.seconds();
        ++stats->spgemm_calls;
        stats->frontier_rows += frontier.size();
        stats->sampled_nnz += sampled.nnz();
      }
    } else {
      // P = Q·A: each row is one frontier vertex's neighbourhood. Q has
      // one nonzero per row, so the product is a row selection of A; the
      // generic_spgemm path runs the same product through the general
      // kernel (identical result, used for validation and as the paper's
      // literal formulation).
      timer.reset();
      CsrMatrix p;
      {
        TRKX_TRACE_SPAN("shadow.spgemm", "sample");
        if (config_.generic_spgemm) {
          const CsrMatrix q = CsrMatrix::selection(n, frontier);
          p = spgemm(q, sym_adj_);
        } else {
          p = sym_adj_.select_rows(frontier);
        }
      }
      metrics().counter("sample.spgemm_calls").add(1);
      metrics().counter("sample.frontier_rows").add(frontier.size());
      if (stats) {
        stats->spgemm_seconds += timer.seconds();
        ++stats->spgemm_calls;
        stats->frontier_rows += frontier.size();
      }

      timer.reset();
      {
        TRKX_TRACE_SPAN("shadow.normalise_draw", "sample");
        p.normalize_rows();
        sampled = sample_rows(p, config_.fanout, row_root, root_rngs);
      }
      metrics().counter("sample.sampled_nnz").add(sampled.nnz());
      if (stats) {
        stats->sample_seconds += timer.seconds();
        stats->sampled_nnz += sampled.nnz();
      }
    }

    // Record draws in F and expand the next Q (one nonzero per draw).
    std::vector<std::uint32_t> next_cols;
    std::vector<std::uint32_t> next_root;
    next_cols.reserve(sampled.nnz());
    next_root.reserve(sampled.nnz());
    for (std::size_t row = 0; row < sampled.rows(); ++row) {
      const std::uint32_t root = row_root[row];
      for (std::uint64_t k = sampled.row_ptr()[row];
           k < sampled.row_ptr()[row + 1]; ++k) {
        const std::uint32_t c = sampled.col_idx()[k];
        visited[root].push_back(c);
        next_cols.push_back(c);
        next_root.push_back(root);
      }
    }
    frontier = std::move(next_cols);
    row_root = std::move(next_root);
  }

  for (auto& verts : visited) {
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  }

  // Materialise the stacked frontier matrix F (#roots × n) as in Figure 2.
  {
    std::vector<std::uint64_t> row_ptr(num_roots + 1, 0);
    std::vector<std::uint32_t> col;
    for (std::size_t r = 0; r < num_roots; ++r) {
      col.insert(col.end(), visited[r].begin(), visited[r].end());
      row_ptr[r + 1] = col.size();
    }
    std::vector<float> val(col.size(), 1.0f);
    // Built outside the lock; only the cache store is serialised against
    // other prefetch workers sampling through the same sampler.
    CsrMatrix frontier = CsrMatrix::from_csr(num_roots, n, std::move(row_ptr),
                                             std::move(col), std::move(val));
    LockGuard lock(frontier_mutex_);
    last_frontier_ = std::move(frontier);
  }
  return visited;
}

InducedSubgraph MatrixShadowSampler::extract_component(
    const std::vector<std::uint32_t>& verts) const {
  // Row/column-selection extraction A(S, S) = S·A·Sᵀ (Figure 2). The fast
  // path realises the selection products directly on the graph's CSR
  // index; the generic path runs them through the SpGEMM kernel.
  if (!config_.generic_spgemm) return induced_subgraph(*parent_, verts);
  const CsrMatrix comp = induced_via_spgemm(dir_adj_, verts);
  InducedSubgraph out;
  out.vertex_map = verts;
  std::vector<Edge> edges;
  edges.reserve(comp.nnz());
  std::vector<std::pair<std::uint32_t, Edge>> ordered;  // (parent edge, edge)
  ordered.reserve(comp.nnz());
  for (const Triplet& t : comp.to_triplets()) {
    const std::uint32_t parent_edge =
        parent_->find_edge(verts[t.row], verts[t.col]);
    TRKX_CHECK_MSG(parent_edge != Graph::kNoEdge,
                   "extracted edge missing from parent graph");
    ordered.emplace_back(parent_edge, Edge{t.row, t.col});
  }
  // Restore parent edge order so the output matches the reference sampler.
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [pe, e] : ordered) {
    out.edge_map.push_back(pe);
    edges.push_back(e);
  }
  out.graph = Graph(verts.size(), std::move(edges));
  return out;
}

ShadowSample MatrixShadowSampler::sample(
    const std::vector<std::uint32_t>& batch, Rng& rng,
    BulkSampleStats* stats) const {
  auto samples = sample_bulk({batch}, rng, stats);
  return std::move(samples.front());
}

std::vector<ShadowSample> MatrixShadowSampler::sample_bulk(
    const std::vector<std::vector<std::uint32_t>>& batches, Rng& rng,
    BulkSampleStats* stats) const {
  fault::inject("sampler.bulk_sample");
  TRKX_CHECK(!batches.empty());
  // Stack every batch's roots (Equation 1).
  std::vector<std::uint32_t> roots;
  for (const auto& b : batches)
    roots.insert(roots.end(), b.begin(), b.end());

  auto visited = run_levels(roots, rng, stats);

  WallTimer timer;
  TRKX_TRACE_SPAN("shadow.extract", "sample");
  metrics().counter("sample.bulk_calls").add(1);
  metrics().counter("sample.bulk_batches").add(batches.size());
  std::vector<ShadowSample> out;
  out.reserve(batches.size());
  std::size_t off = 0;
  for (const auto& batch : batches) {
    ShadowSample sample;
    sample.roots.reserve(batch.size());
    std::vector<InducedSubgraph> parts;
    parts.reserve(batch.size());
    std::uint32_t vert_off = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& verts = visited[off + i];
      const auto it =
          std::lower_bound(verts.begin(), verts.end(), batch[i]);
      TRKX_CHECK(it != verts.end() && *it == batch[i]);
      sample.roots.push_back(vert_off +
                             static_cast<std::uint32_t>(it - verts.begin()));
      for (std::size_t v = 0; v < verts.size(); ++v)
        sample.component_of.push_back(static_cast<std::uint32_t>(i));
      parts.push_back(extract_component(verts));
      vert_off += static_cast<std::uint32_t>(verts.size());
    }
    sample.sub = disjoint_union(parts);
    out.push_back(std::move(sample));
    off += batch.size();
  }
  if (stats) stats->extract_seconds += timer.seconds();
  return out;
}

}  // namespace trkx
