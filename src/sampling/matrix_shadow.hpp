#pragma once

#include "sampling/shadow.hpp"
#include "sparse/csr.hpp"
#include "util/annotations.hpp"
#include "util/timer.hpp"

namespace trkx {

/// Phase breakdown of one bulk sampling call (for the Figure 3 split and
/// the sampler ablation bench).
struct BulkSampleStats {
  std::size_t spgemm_calls = 0;
  std::size_t frontier_rows = 0;   ///< total Q rows processed across levels
  std::size_t sampled_nnz = 0;     ///< total neighbours drawn
  double spgemm_seconds = 0.0;
  double sample_seconds = 0.0;
  double extract_seconds = 0.0;
  void merge(const BulkSampleStats& other);
};

/// Matrix-based ShaDow sampler (the paper's Figure 2 / Section III-C).
///
/// Sampling is expressed as sparse matrix operations on the symmetrised
/// adjacency A:
///   1. Q^d is a (#roots × n) selection matrix, one nonzero per row.
///   2. P = Q·A extracts each frontier vertex's neighbourhood as a row;
///      normalize_rows() turns it into a uniform distribution.
///   3. sample_rows() draws s distinct neighbours per row; every draw is
///      recorded in the frontier matrix F (one row per *root*).
///   4. The sampled nonzeros expand into the next Q (one nonzero per row),
///      and the process repeats for d levels.
///   5. Each root's induced subgraph is extracted from the *directed*
///      adjacency with row/column-selection SpGEMMs (S·A·Sᵀ).
///
/// Bulk mode stacks the per-batch Q matrices (Equation 1) so k minibatches
/// share every SpGEMM pass — the optimisation the paper credits for its
/// sampling speedup.
class MatrixShadowSampler {
 public:
  MatrixShadowSampler(const Graph& parent, const ShadowConfig& config);

  /// Sample one minibatch (Figure 2 with a single Q block).
  ShadowSample sample(const std::vector<std::uint32_t>& batch, Rng& rng,
                      BulkSampleStats* stats = nullptr) const;

  /// Sample k minibatches in one stacked pass (Equation 1). Returns one
  /// ShadowSample per input batch, identical in structure to what
  /// ShadowSampler would produce for the same draws.
  std::vector<ShadowSample> sample_bulk(
      const std::vector<std::vector<std::uint32_t>>& batches, Rng& rng,
      BulkSampleStats* stats = nullptr) const;

  /// The stacked frontier matrix F (#roots × n) from the most recent call
  /// — row i holds every vertex root i's walk visited. Exposed for tests.
  /// Returned by value: concurrent sample_bulk() calls (prefetch workers
  /// share one sampler) overwrite the cache under frontier_mutex_, so a
  /// reference would be a torn read.
  CsrMatrix last_frontier() const {
    LockGuard lock(frontier_mutex_);
    return last_frontier_;
  }

  const ShadowConfig& config() const { return config_; }

 private:
  /// Shared machinery: run the level loop for the given stacked roots and
  /// return one visited-vertex set per root.
  std::vector<std::vector<std::uint32_t>> run_levels(
      const std::vector<std::uint32_t>& roots, Rng& rng,
      BulkSampleStats* stats) const;

  /// Extract one root's component through selection SpGEMMs and map its
  /// edges back to parent edge indices (restoring parent edge order).
  InducedSubgraph extract_component(
      const std::vector<std::uint32_t>& verts) const;

  const Graph* parent_;
  CsrMatrix sym_adj_;  ///< walk graph
  CsrMatrix dir_adj_;  ///< directed adjacency for component extraction
  ShadowConfig config_;
  mutable Mutex frontier_mutex_;
  mutable CsrMatrix last_frontier_ TRKX_GUARDED_BY(frontier_mutex_);
};

}  // namespace trkx
