#include "serve/queue.hpp"

#include <chrono>
#include <sstream>
#include <utility>

namespace trkx::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  TRKX_CHECK_MSG(capacity_ > 0, "AdmissionQueue capacity must be positive");
}

std::size_t AdmissionQueue::depth_locked() const {
  return lanes_[0].size() + lanes_[1].size() + lanes_[2].size();
}

void AdmissionQueue::push(Request request) {
  {
    LockGuard lock(mutex_);
    if (closed_) {
      throw ServerStoppedError("serve: queue closed, request rejected");
    }
    if (depth_locked() >= capacity_) {
      std::ostringstream os;
      os << "serve: admission queue full (" << capacity_
         << "), request " << request.id << " rejected";
      throw OverloadError(os.str());
    }
    lanes_[static_cast<int>(request.priority)].push_back(std::move(request));
  }
  ready_.notify_one();
}

std::optional<Request> AdmissionQueue::pop(long wait_ms) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(wait_ms);
  UniqueLock lock(mutex_);
  for (;;) {
    for (int p = 2; p >= 0; --p) {
      if (!lanes_[p].empty()) {
        Request out = std::move(lanes_[p].front());
        lanes_[p].pop_front();
        return out;
      }
    }
    if (closed_) return std::nullopt;
    if (wait_ms > 0) {
      if (ready_.wait_until(lock, give_up) == std::cv_status::timeout) {
        // One more drain pass above on the next loop iteration would
        // re-wait; check emptiness directly instead.
        for (int p = 2; p >= 0; --p) {
          if (!lanes_[p].empty()) {
            Request out = std::move(lanes_[p].front());
            lanes_[p].pop_front();
            return out;
          }
        }
        return std::nullopt;
      }
    } else {
      ready_.wait(lock);
    }
  }
}

std::size_t AdmissionQueue::shed(Priority up_to, std::size_t max_count) {
  // Collect under the lock, fail the promises outside it: set_exception
  // wakes arbitrary waiters and must not run while holding mutex_.
  std::vector<Request> dropped;
  {
    LockGuard lock(mutex_);
    for (int p = 0; p <= static_cast<int>(up_to); ++p) {
      while (!lanes_[p].empty() && dropped.size() < max_count) {
        dropped.push_back(std::move(lanes_[p].front()));
        lanes_[p].pop_front();
      }
    }
  }
  for (Request& r : dropped) {
    std::ostringstream os;
    os << "serve: request " << r.id << " (" << priority_name(r.priority)
       << ") shed under overload";
    r.result.set_exception(
        std::make_exception_ptr(OverloadError(os.str())));
  }
  return dropped.size();
}

void AdmissionQueue::close() {
  {
    LockGuard lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  LockGuard lock(mutex_);
  return depth_locked();
}

double AdmissionQueue::occupancy() const {
  // NOLINT(trkx-div-guard): capacity_ > 0 enforced in the constructor
  return static_cast<double>(depth()) / static_cast<double>(capacity_);
}

bool AdmissionQueue::closed() const {
  LockGuard lock(mutex_);
  return closed_;
}

}  // namespace trkx::serve
