#include "serve/replica.hpp"

#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "pipeline/checkpoint.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace trkx::serve {

ReplicaSet::ReplicaSet(std::size_t node_dim, std::size_t edge_dim,
                       const PipelineConfig& config)
    : node_dim_(node_dim), edge_dim_(edge_dim), config_(config) {}

void ReplicaSet::install(std::unique_ptr<TrackingPipeline> pipeline,
                         const std::string& source) {
  TRKX_CHECK_MSG(pipeline != nullptr, "ReplicaSet::install: null pipeline");
  auto replica = std::make_shared<ModelReplica>();
  replica->source = source;
  replica->pipeline = std::move(pipeline);
  {
    LockGuard lock(mutex_);
    replica->generation = ++generation_;
    current_ = std::move(replica);
  }
  metrics().gauge("serve.replica.generation")
      .set(static_cast<double>(generation()));
}

std::shared_ptr<const ModelReplica> ReplicaSet::acquire() const {
  LockGuard lock(mutex_);
  TRKX_CHECK_MSG(current_ != nullptr,
                 "ReplicaSet::acquire before install()");
  return current_;
}

std::uint64_t ReplicaSet::generation() const {
  LockGuard lock(mutex_);
  return generation_;
}

std::uint64_t ReplicaSet::reloads_ok() const {
  LockGuard lock(mutex_);
  return reloads_ok_;
}

std::uint64_t ReplicaSet::reloads_failed() const {
  LockGuard lock(mutex_);
  return reloads_failed_;
}

std::unique_ptr<TrackingPipeline> ReplicaSet::clone_with_checkpoint(
    const std::string& path) {
  // Clone the embedding/filter/scales from the serving replica (the
  // checkpoint carries only the GNN stage), then overwrite the GNN store
  // through the CRC-validating envelope.
  std::shared_ptr<const ModelReplica> base = acquire();
  auto clone =
      std::make_unique<TrackingPipeline>(node_dim_, edge_dim_, config_);
  std::stringstream weights;
  base->pipeline->save(weights);
  clone->load(weights);
  Adam throwaway(clone->gnn().store, AdamOptions{});
  read_checkpoint(path, clone->gnn().store, throwaway);
  return clone;
}

bool ReplicaSet::reload_impl(const std::string& what,
                             const std::string& path) {
  try {
    fault::inject("serve.checkpoint_reload");
    if (path.empty()) {
      throw CheckpointError("serve: no valid checkpoint found in " + what);
    }
    auto replica = std::make_shared<ModelReplica>();
    replica->source = path;
    replica->pipeline = clone_with_checkpoint(path);
    std::uint64_t gen = 0;
    {
      LockGuard lock(mutex_);
      replica->generation = ++generation_;
      ++reloads_ok_;
      gen = generation_;
      current_ = std::move(replica);
    }
    metrics().counter("serve.reload.ok").add(1);
    metrics().gauge("serve.replica.generation").set(static_cast<double>(gen));
    TRKX_INFO << "serve: replica generation " << gen << " loaded from "
              << path;
    return true;
  } catch (const Error& e) {
    {
      LockGuard lock(mutex_);
      ++reloads_failed_;
    }
    metrics().counter("serve.reload.fail").add(1);
    TRKX_WARN << "serve: checkpoint reload from " << what
              << " failed, keeping generation " << generation() << ": "
              << e.what();
    return false;
  }
}

bool ReplicaSet::reload_from_checkpoint_dir(const std::string& dir) {
  return reload_impl(dir, latest_checkpoint(dir));
}

bool ReplicaSet::reload_from_checkpoint_file(const std::string& path) {
  return reload_impl(path, path);
}

}  // namespace trkx::serve
