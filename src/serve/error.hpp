#pragma once

#include <string>

#include "util/error.hpp"

namespace trkx::serve {

/// Serving failure modes. Every way a request can fail maps to exactly one
/// of these types (plus an obs counter — see server.cpp), so callers can
/// select a policy per mode: a load balancer retries OverloadError
/// elsewhere, a client treats DeadlineExceededError as its own timeout,
/// and RetryExhaustedError is the only one worth paging on. None of them
/// ever terminates the server process.

/// Admission control rejected the request: the bounded queue is full, or
/// the degradation ladder is shedding this priority class. Deliberately
/// raised *fast* (before any stage work) — overload must cost the server
/// almost nothing per rejected request.
class OverloadError : public Error {
 public:
  using Error::Error;
};

/// The request's deadline passed. Raised at the inter-stage checks, so at
/// most one stage of work is wasted past the deadline; the message names
/// the stage at which the request was abandoned.
class DeadlineExceededError : public Error {
 public:
  using Error::Error;
};

/// One stage attempt exceeded its per-stage wall-time budget
/// (TRKX_SERVE_STAGE_TIMEOUT_MS). Counted as a failed attempt against the
/// retry budget; surfaces as RetryExhaustedError once that runs out.
class StageTimeoutError : public Error {
 public:
  using Error::Error;
};

/// A stage kept failing (injected fault, timeout, corrupt input) until the
/// bounded retry budget ran out. The message carries the stage name and
/// the final attempt's error.
class RetryExhaustedError : public Error {
 public:
  using Error::Error;
};

/// The server is stopped (or stopping) and can no longer accept work.
class ServerStoppedError : public Error {
 public:
  using Error::Error;
};

}  // namespace trkx::serve
