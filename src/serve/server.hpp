#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/degrade.hpp"
#include "serve/queue.hpp"
#include "serve/replica.hpp"
#include "util/parallel_guard.hpp"

namespace trkx::serve {

/// Runtime shape of the inference server. Every field has a TRKX_SERVE_*
/// environment knob (see from_env()); the defaults are sized for the
/// perf-smoke scale used in tests.
struct ServeConfig {
  int workers = 2;                     ///< TRKX_SERVE_WORKERS
  std::size_t queue_depth = 8;         ///< TRKX_SERVE_QUEUE_DEPTH
  /// Default per-request wall-clock budget in ms applied by the
  /// two-argument submit(); 0 = unbounded. TRKX_SERVE_DEADLINE_MS.
  std::int64_t default_deadline_ms = 0;
  /// Per-stage latency budget in ms; a stage exceeding it counts as a
  /// failed attempt (retried within the budget, then StageTimeoutError).
  /// 0 = no per-stage timeout. TRKX_SERVE_STAGE_TIMEOUT_MS.
  std::int64_t stage_timeout_ms = 0;
  /// Stage attempts beyond the first; 0 = fail fast.
  /// TRKX_SERVE_RETRY_BUDGET.
  int retry_budget = 1;
  double b_field_tesla = 2.0;  ///< solenoid field for the fit stage [T]
  DegradeConfig degrade{};     ///< high/low from TRKX_SERVE_SHED_*_PCT

  /// Build a config from the TRKX_SERVE_* knobs (registry defaults when
  /// unset). Invalid combinations fail fast with trkx::Error.
  static ServeConfig from_env();
};

/// One consistent snapshot of the server's failure-mode accounting. Every
/// value is also a serve.* counter in the global metrics registry; this
/// struct exists so tests and the trkx-serve driver can assert on deltas
/// without string lookups.
struct ServeCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;  ///< OverloadError at admission
  std::uint64_t rejected_shed_low = 0;    ///< ladder level >= 1, kLow shed
  std::uint64_t rejected_admit_fault = 0; ///< injected serve.admit fault
  std::uint64_t shed_queued = 0;          ///< queued kLow failed on escalation
  std::uint64_t deadline_expired = 0;     ///< abandoned before/between stages
  std::uint64_t stage_timeouts = 0;       ///< attempts past stage_timeout_ms
  std::uint64_t retries = 0;              ///< stage attempts beyond the first
  std::uint64_t retries_exhausted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;       ///< requests finished with an exception
  std::uint64_t fit_skipped = 0;  ///< requests served at skip-fit or above
};

/// The event-stream inference server: N workers draining a bounded
/// admission queue, each request running the five-stage pipeline against
/// an atomically-swappable warm replica. The design goal is that the
/// server *degrades instead of dying* — every failure mode (full queue,
/// expired deadline, stage timeout, exhausted retries, injected fault)
/// surfaces as a typed trkx::serve error on that request's future plus a
/// serve.* counter, and never as a dead worker or a killed process.
///
/// Fault sites: serve.admit (admission), serve.stage (before every stage
/// attempt), serve.checkpoint_reload (inside ReplicaSet).
class ServeServer {
 public:
  ServeServer(ReplicaSet& replicas, const ServeConfig& config);
  ~ServeServer();

  /// Spawn the worker pool. Requires a replica to be installed.
  void start();

  /// Close admission, drain queued requests (workers finish what was
  /// accepted), join workers, and rethrow the first worker-fatal error if
  /// one escaped the per-request handling. Idempotent.
  void stop();

  /// Hand one event to the server. Returns the future carrying either a
  /// ServeResult or one of the typed serve errors. Throws immediately —
  /// the fast rejection path — on a full queue (OverloadError), a shed
  /// priority class (OverloadError), an injected serve.admit fault
  /// (OverloadError), or a stopped server (ServerStoppedError).
  std::future<ServeResult> submit(Event event, Priority priority,
                                  Deadline deadline);
  /// Same, with the config's default deadline applied.
  std::future<ServeResult> submit(Event event, Priority priority);

  ServeCounters counters() const;
  std::size_t queue_depth() const { return queue_.depth(); }
  int degrade_level() const { return degrade_.level(); }
  std::uint64_t degrade_transitions() const { return degrade_.transitions(); }
  const ServeConfig& config() const { return config_; }

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

 private:
  /// Thread entry: wraps worker_loop in the ExceptionBarrier so a fatal
  /// worker error surfaces at stop() instead of std::terminate.
  void worker_entry();
  void worker_loop();
  /// The request path proper: five stages with an inter-stage deadline
  /// check, per-stage timeout, and bounded retry. TRKX_HOT — its closure
  /// must stay allocation- and blocking-free (enforced by trkx-analyze).
  TRKX_HOT ServeResult run_request(const ModelReplica& replica,
                                   const StagePlan& plan,
                                   Request& request) const;
  /// One stage with retry/timeout accounting; `body` must be re-runnable
  /// (the stage entry points recompute from scratch). Declared here,
  /// instantiated only in server.cpp.
  template <typename Fn>
  void run_stage(Stage stage, const Deadline& deadline, ServeResult& result,
                 Fn&& body) const;

  const ServeConfig config_;
  ReplicaSet& replicas_;
  AdmissionQueue queue_;
  DegradeController degrade_;
  ExceptionBarrier barrier_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> next_id_{0};

  // Metric handles resolved once at construction so the hot request path
  // never touches the registry's name-lookup (first-call registration
  // allocates).
  Counter* accepted_;
  Counter* rejected_full_;
  Counter* rejected_shed_;
  Counter* rejected_fault_;
  Counter* shed_queued_;
  Counter* deadline_expired_;
  Counter* stage_timeout_;
  Counter* retry_;
  Counter* retry_exhausted_;
  Counter* completed_;
  Counter* failed_;
  Counter* fit_skipped_;
  Gauge* queue_gauge_;
  Histogram* latency_ms_;
  Histogram* stage_ms_[kNumStages];
};

}  // namespace trkx::serve
