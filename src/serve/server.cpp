#include "serve/server.hpp"

#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "pipeline/track_fit.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace trkx::serve {

ServeConfig ServeConfig::from_env() {
  ServeConfig cfg;
  cfg.workers = static_cast<int>(env::get_int("TRKX_SERVE_WORKERS"));
  cfg.queue_depth =
      static_cast<std::size_t>(env::get_int("TRKX_SERVE_QUEUE_DEPTH"));
  cfg.default_deadline_ms = env::get_int("TRKX_SERVE_DEADLINE_MS");
  cfg.stage_timeout_ms = env::get_int("TRKX_SERVE_STAGE_TIMEOUT_MS");
  cfg.retry_budget = static_cast<int>(env::get_int("TRKX_SERVE_RETRY_BUDGET"));
  const double high = env::get_double("TRKX_SERVE_SHED_HIGH_PCT");
  const double low = env::get_double("TRKX_SERVE_SHED_LOW_PCT");
  TRKX_CHECK_MSG(low >= 0.0 && high <= 100.0 && low < high,
                 "TRKX_SERVE_SHED_*_PCT: need 0 <= low < high <= 100, got low="
                     << low << " high=" << high);
  cfg.degrade.high = high / 100.0;
  cfg.degrade.low = low / 100.0;
  return cfg;
}

ServeServer::ServeServer(ReplicaSet& replicas, const ServeConfig& config)
    : config_(config),
      replicas_(replicas),
      queue_(config.queue_depth),
      degrade_(config.degrade) {
  TRKX_CHECK_MSG(config_.workers >= 1, "ServeConfig: workers must be >= 1");
  TRKX_CHECK_MSG(config_.retry_budget >= 0,
                 "ServeConfig: retry_budget must be >= 0");
  TRKX_CHECK_MSG(config_.default_deadline_ms >= 0,
                 "ServeConfig: default_deadline_ms must be >= 0");
  TRKX_CHECK_MSG(config_.stage_timeout_ms >= 0,
                 "ServeConfig: stage_timeout_ms must be >= 0");
  MetricsRegistry& reg = metrics();
  accepted_ = &reg.counter("serve.accepted");
  rejected_full_ = &reg.counter("serve.rejected.queue_full");
  rejected_shed_ = &reg.counter("serve.rejected.shed_low");
  rejected_fault_ = &reg.counter("serve.rejected.admit_fault");
  shed_queued_ = &reg.counter("serve.shed.queued");
  deadline_expired_ = &reg.counter("serve.deadline.expired");
  stage_timeout_ = &reg.counter("serve.stage.timeout");
  retry_ = &reg.counter("serve.retry");
  retry_exhausted_ = &reg.counter("serve.retry.exhausted");
  completed_ = &reg.counter("serve.completed");
  failed_ = &reg.counter("serve.failed");
  fit_skipped_ = &reg.counter("serve.fit.skipped");
  queue_gauge_ = &reg.gauge("serve.queue.depth");
  latency_ms_ = &reg.histogram("serve.latency.ms");
  for (int s = 0; s < kNumStages; ++s) {
    stage_ms_[s] = &reg.histogram(std::string("serve.stage.") +
                                  stage_name(static_cast<Stage>(s)) + ".ms");
  }
}

ServeServer::~ServeServer() {
  try {
    stop();
  } catch (const std::exception& e) {
    TRKX_WARN << "serve: error during shutdown: " << e.what();
  }
}

void ServeServer::start() {
  TRKX_CHECK_MSG(!started_.exchange(true), "ServeServer::start called twice");
  replicas_.acquire();  // fail fast when no replica was installed
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_entry(); });
  }
  TRKX_INFO << "serve: started " << config_.workers
            << " worker(s), queue depth " << config_.queue_depth;
}

void ServeServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (!stopped_.exchange(true)) queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // If a worker died (barrier captured its error below), its queued
  // requests were never drained — fail their promises instead of letting
  // callers hang on the future.
  while (std::optional<Request> req = queue_.pop(0)) {
    failed_->add(1);
    req->result.set_exception(std::make_exception_ptr(
        ServerStoppedError("serve: server stopped before request ran")));
  }
  queue_gauge_->set(0.0);
  barrier_.rethrow();
}

std::future<ServeResult> ServeServer::submit(Event event, Priority priority) {
  return submit(std::move(event), priority,
                Deadline::after_ms(config_.default_deadline_ms));
}

std::future<ServeResult> ServeServer::submit(Event event, Priority priority,
                                             Deadline deadline) {
  if (!started_.load(std::memory_order_acquire) ||
      stopped_.load(std::memory_order_acquire)) {
    throw ServerStoppedError("serve: submit on a stopped server");
  }
  try {
    fault::inject("serve.admit");
  } catch (const FaultInjectedError& e) {
    rejected_fault_->add(1);
    throw OverloadError(std::string("serve: admission rejected by injected "
                                    "fault: ") +
                        e.what());
  }
  if (priority == Priority::kLow && degrade_.plan().shed_low) {
    rejected_shed_->add(1);
    throw OverloadError(
        "serve: low-priority request shed (degradation ladder >= shed-low)");
  }
  Request request(next_id_.fetch_add(1) + 1, priority, deadline,
                  std::move(event));
  std::future<ServeResult> future = request.result.get_future();
  try {
    queue_.push(std::move(request));
  } catch (const OverloadError&) {
    rejected_full_->add(1);
    throw;
  }
  accepted_->add(1);
  queue_gauge_->set(static_cast<double>(queue_.depth()));
  degrade_.update(queue_.occupancy());
  return future;
}

void ServeServer::worker_entry() {
  // Thread entry point: an escaping exception would be std::terminate.
  // Capture into the barrier instead; stop() rethrows on its caller.
  barrier_.run([this] { worker_loop(); });
}

void ServeServer::worker_loop() {
  for (;;) {
    std::optional<Request> req = queue_.pop(/*wait_ms=*/50);
    queue_gauge_->set(static_cast<double>(queue_.depth()));
    const int level = degrade_.update(queue_.occupancy());
    if (level >= 1) {
      const std::size_t dropped =
          queue_.shed(Priority::kLow, config_.queue_depth);
      if (dropped > 0) {
        shed_queued_->add(dropped);
        failed_->add(dropped);
      }
    }
    if (!req.has_value()) {
      if (queue_.closed()) return;
      continue;  // pop timed out; re-check the ladder and keep draining
    }
    Request request = std::move(*req);
    if (request.deadline.expired()) {
      deadline_expired_->add(1);
      failed_->add(1);
      std::ostringstream os;
      os << "serve: request " << request.id
         << " abandoned in queue, deadline overshot by "
         << request.deadline.overshoot_ms() << " ms";
      request.result.set_exception(
          std::make_exception_ptr(DeadlineExceededError(os.str())));
      continue;
    }
    const std::shared_ptr<const ModelReplica> replica = replicas_.acquire();
    const StagePlan plan = degrade_.plan();
    try {
      ServeResult result = run_request(*replica, plan, request);
      result.latency_seconds =
          std::chrono::duration<double>(Deadline::Clock::now() -
                                        request.submitted_at)
              .count();
      latency_ms_->observe(result.latency_seconds * 1e3);
      completed_->add(1);
      request.result.set_value(std::move(result));
    } catch (const Error&) {
      failed_->add(1);
      request.result.set_exception(std::current_exception());
    }
  }
}

template <typename Fn>
void ServeServer::run_stage(Stage stage, const Deadline& deadline,
                            ServeResult& result, Fn&& body) const {
  const int idx = static_cast<int>(stage);
  for (int attempt = 0;; ++attempt) {
    if (deadline.expired()) {
      deadline_expired_->add(1);
      std::ostringstream os;
      os << "serve: deadline expired before stage " << stage_name(stage)
         << " (overshoot " << deadline.overshoot_ms() << " ms)";
      throw DeadlineExceededError(os.str());
    }
    bool timed_out = false;
    std::string attempt_error;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      fault::inject("serve.stage");
      body();
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      // NOLINT(trkx-kernel-dispatch): scalar telemetry sum, not a kernel
      result.stage_seconds[idx] += ms * 1e-3;
      stage_ms_[idx]->observe(ms);
      if (config_.stage_timeout_ms <= 0 ||
          ms <= static_cast<double>(config_.stage_timeout_ms)) {
        return;  // the stage attempt succeeded within budget
      }
      stage_timeout_->add(1);
      timed_out = true;
      std::ostringstream os;
      os << "stage " << stage_name(stage) << " took " << ms
         << " ms (budget " << config_.stage_timeout_ms << " ms)";
      attempt_error = os.str();
    } catch (const DeadlineExceededError&) {
      throw;  // not an attempt failure: the request's budget is gone
    } catch (const Error& e) {
      attempt_error = e.what();
    }
    if (attempt >= config_.retry_budget) {
      std::ostringstream os;
      os << "serve: stage " << stage_name(stage) << " failed after "
         << attempt + 1 << " attempt(s): " << attempt_error;
      if (timed_out) throw StageTimeoutError(os.str());
      retry_exhausted_->add(1);
      throw RetryExhaustedError(os.str());
    }
    retry_->add(1);
    ++result.retries;
  }
}

ServeResult ServeServer::run_request(const ModelReplica& replica,
                                     const StagePlan& plan,
                                     Request& request) const {
  ServeResult result;
  result.degrade_level = plan.level;
  result.replica_generation = replica.generation;
  const TrackingPipeline& pipeline = *replica.pipeline;
  Event event = std::move(request.event);
  std::vector<float> scores;
  run_stage(Stage::kEmbed, request.deadline, result,
            [&] { pipeline.embed_stage(event); });
  run_stage(Stage::kFilter, request.deadline, result, [&] {
    pipeline.filter_stage(event, plan.filter_threshold_scale);
  });
  run_stage(Stage::kGnn, request.deadline, result,
            [&] { scores = pipeline.gnn_stage(event); });
  run_stage(Stage::kBuild, request.deadline, result,
            [&] { result.tracks = pipeline.build_stage(event, scores); });
  if (plan.skip_fit) {
    result.fit_skipped = true;
    fit_skipped_->add(1);
    return result;
  }
  run_stage(Stage::kFit, request.deadline, result, [&] {
    result.fits.clear();  // attempts must be re-runnable
    result.fits.reserve(result.tracks.size());
    for (const TrackCandidate& track : result.tracks) {
      const std::optional<FittedTrack> fit =
          fit_track(event, track, config_.b_field_tesla);
      if (fit.has_value()) result.fits.push_back(*fit);
    }
  });
  return result;
}

ServeCounters ServeServer::counters() const {
  ServeCounters c;
  c.accepted = accepted_->value();
  c.rejected_queue_full = rejected_full_->value();
  c.rejected_shed_low = rejected_shed_->value();
  c.rejected_admit_fault = rejected_fault_->value();
  c.shed_queued = shed_queued_->value();
  c.deadline_expired = deadline_expired_->value();
  c.stage_timeouts = stage_timeout_->value();
  c.retries = retry_->value();
  c.retries_exhausted = retry_exhausted_->value();
  c.completed = completed_->value();
  c.failed = failed_->value();
  c.fit_skipped = fit_skipped_->value();
  return c;
}

}  // namespace trkx::serve
