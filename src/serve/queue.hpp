#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "serve/request.hpp"
#include "util/annotations.hpp"

namespace trkx::serve {

/// Bounded admission queue with priority classes and explicit
/// backpressure — the serving-side sibling of the PrefetchQueue idiom
/// (bounded look-ahead, condvar hand-off, stats the snapshotter can
/// publish). The crucial difference: a full PrefetchQueue blocks its
/// producer, a full AdmissionQueue *rejects* — under overload the server
/// answers "no" in microseconds instead of queueing unboundedly and
/// answering everyone late.
///
/// push() never blocks: it either enqueues or throws OverloadError.
/// pop() blocks (bounded by `wait` or until close()) and always hands out
/// the highest-priority class first, FIFO within a class, so latecomer
/// kHigh requests overtake a backlog of kLow ones.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// Enqueue or throw OverloadError (queue full) / ServerStoppedError
  /// (closed). Wakes one waiting worker on success.
  void push(Request request);

  /// Dequeue the highest-priority request, waiting up to `wait_ms` (<= 0:
  /// wait until close). Returns nullopt on timeout or when the queue is
  /// closed and drained.
  std::optional<Request> pop(long wait_ms);

  /// Drop up to `max_count` queued requests of priority <= `up_to`,
  /// oldest first, failing each one's promise with OverloadError — the
  /// degradation ladder's shed step. Returns how many were dropped.
  std::size_t shed(Priority up_to, std::size_t max_count);

  /// Stop accepting pushes and wake every waiter. Queued requests remain
  /// poppable (stop() drains them); a closed *and* empty queue makes
  /// pop() return nullopt immediately.
  void close();

  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const;
  /// depth() / capacity() in [0, 1] — the degradation controller's input.
  double occupancy() const;
  bool closed() const;

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

 private:
  std::size_t depth_locked() const TRKX_REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar ready_;
  /// One FIFO per priority class, indexed by static_cast<int>(Priority).
  std::deque<Request> lanes_[3] TRKX_GUARDED_BY(mutex_);
  bool closed_ TRKX_GUARDED_BY(mutex_) = false;
};

}  // namespace trkx::serve
