// trkx-serve: the event-stream inference server driver.
//
//   trkx-serve [--events 32] [--rate 0] [--train 2] [--mean-particles 25]
//              [--model model.bin] [--save-model model.bin]
//              [--checkpoint-dir DIR] [--write-checkpoint]
//              [--reload-every N]
//              [--workers N] [--queue-depth N] [--deadline-ms N]
//              [--stage-timeout-ms N] [--retry-budget N]
//
// Warm-starts a tiny learned-graph pipeline (or loads one with --model),
// starts the ServeServer, and drives `--events` synthetic requests at an
// optional open-loop `--rate` (req/s; 0 = submit as fast as admission
// allows). SIGHUP — or every `--reload-every` submissions — triggers an
// atomic replica reload from --checkpoint-dir; a corrupt or missing
// checkpoint costs the reload, never the service. TRKX_FAULTS is armed
// from the environment, so the CI serving leg can inject faults at
// serve.admit / serve.stage / serve.checkpoint_reload and assert on the
// counter lines this driver prints:
//
//   serve.accepted=31
//   serve.rejected.queue_full=1
//   ...
//   serve.exit=ok
//
// The driver exits 0 as long as the *server* survived — rejected, shed,
// and failed requests are the degradation working as designed. Only an
// untyped (non-trkx::Error) escape exits non-zero.

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "detector/generator.hpp"
#include "pipeline/checkpoint.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

volatile std::sig_atomic_t g_reload_requested = 0;

void on_sighup(int) { g_reload_requested = 1; }

}  // namespace

using namespace trkx;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const int n_events = args.get_int("events", 32);
  const double rate = args.get_double("rate", 0.0);
  const std::size_t n_train =
      static_cast<std::size_t>(args.get_int("train", 2));
  const double mean_particles = args.get_double("mean-particles", 25.0);
  const std::string model_path = args.get("model", "");
  const std::string save_model = args.get("save-model", "");
  const std::string ckpt_dir = args.get("checkpoint-dir", "");
  const int reload_every = args.get_int("reload-every", 0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  fault::Registry::global().arm_from_env();
  std::signal(SIGHUP, on_sighup);

  serve::ServeConfig serve_cfg = serve::ServeConfig::from_env();
  serve_cfg.workers = args.get_int("workers", serve_cfg.workers);
  serve_cfg.queue_depth = static_cast<std::size_t>(
      args.get_int("queue-depth", static_cast<int>(serve_cfg.queue_depth)));
  serve_cfg.default_deadline_ms = args.get_int(
      "deadline-ms", static_cast<int>(serve_cfg.default_deadline_ms));
  serve_cfg.stage_timeout_ms = args.get_int(
      "stage-timeout-ms", static_cast<int>(serve_cfg.stage_timeout_ms));
  serve_cfg.retry_budget =
      args.get_int("retry-budget", serve_cfg.retry_budget);

  // Dataset: tiny synthetic events, both for warm training and as the
  // request stream payloads.
  DetectorConfig detector;
  detector.mean_particles = mean_particles;
  detector.noise_fraction = 0.05;
  serve_cfg.b_field_tesla = detector.b_field;
  // Events drawn from keyed streams (seed, role, index) so the fixture is
  // reproducible under any generation order.
  auto make_events = [&](std::uint64_t role, std::size_t count) {
    std::vector<Event> events;
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      Rng er = Rng::stream(seed, role, i);
      events.push_back(generate_event(detector, er));
    }
    return events;
  };
  const std::vector<Event> train = make_events(0, n_train);
  const std::vector<Event> val = make_events(1, 1);
  const std::vector<Event> payloads = make_events(2, 4);

  PipelineConfig cfg;
  cfg.embedding.epochs = 4;
  cfg.frnn.radius = 0.6f;
  cfg.filter.epochs = 2;
  cfg.gnn.hidden_dim = 8;
  cfg.gnn.num_layers = 1;
  cfg.gnn.mlp_hidden = 1;
  cfg.gnn_train.epochs = 1;
  cfg.gnn_train.batch_size = 64;
  cfg.gnn_train.shadow = {.depth = 2, .fanout = 3};
  cfg.use_learned_graphs = true;

  const std::size_t node_dim = train[0].node_features.cols();
  const std::size_t edge_dim = train[0].edge_features.cols();

  int exit_code = 0;
  std::uint64_t submit_rejected = 0;
  std::uint64_t futures_failed = 0;
  std::uint64_t futures_ok = 0;
  try {
    auto pipeline =
        std::make_unique<TrackingPipeline>(node_dim, edge_dim, cfg);
    std::string source = "warm";
    // Single-process serving driver: fit()'s collectives run on the
    // in-process communicator, so no peer rank can disagree on the arm.
    // NOLINT(trkx-collective-divergent): single-process, no peer ranks
    if (!model_path.empty()) {
      std::ifstream is(model_path, std::ios::binary);
      TRKX_CHECK_MSG(is.good(), "trkx-serve: cannot open --model "
                                    << model_path);
      pipeline->load(is);
      source = model_path;
      TRKX_INFO << "trkx-serve: loaded pipeline from " << model_path;
    } else {
      TRKX_INFO << "trkx-serve: warm-training tiny pipeline ("
                << train.size() << " events)";
      // NOLINT(trkx-collective-unguarded): single-process, no peer ranks
      pipeline->fit(train, val);
    }
    if (!save_model.empty()) {
      std::ostringstream bytes;
      pipeline->save(bytes);
      atomic_write_file(save_model, bytes.str());
      TRKX_INFO << "trkx-serve: saved pipeline to " << save_model;
    }
    if (!ckpt_dir.empty() && args.has("write-checkpoint")) {
      std::filesystem::create_directories(ckpt_dir);
      Adam opt(pipeline->gnn().store, AdamOptions{});
      write_checkpoint(checkpoint_path(ckpt_dir, 1), TrainCheckpointState{},
                       pipeline->gnn().store, opt);
      TRKX_INFO << "trkx-serve: wrote checkpoint to " << ckpt_dir;
    }

    serve::ReplicaSet replicas(node_dim, edge_dim, cfg);
    replicas.install(std::move(pipeline), source);

    serve::ServeServer server(replicas, serve_cfg);
    server.start();

    const auto t_start = std::chrono::steady_clock::now();
    std::vector<std::future<serve::ServeResult>> futures;
    futures.reserve(static_cast<std::size_t>(n_events));
    for (int i = 0; i < n_events; ++i) {
      if (g_reload_requested != 0 || (reload_every > 0 && i > 0 &&
                                      i % reload_every == 0)) {
        g_reload_requested = 0;
        if (ckpt_dir.empty()) {
          TRKX_WARN << "trkx-serve: reload requested but no "
                       "--checkpoint-dir; ignoring";
        } else {
          replicas.reload_from_checkpoint_dir(ckpt_dir);
        }
      }
      // Priority mix: every 3rd request low, every 5th high.
      serve::Priority prio = serve::Priority::kNormal;
      if (i % 3 == 2) prio = serve::Priority::kLow;
      if (i % 5 == 4) prio = serve::Priority::kHigh;
      const Event& payload =
          payloads[static_cast<std::size_t>(i) % payloads.size()];
      try {
        futures.push_back(server.submit(payload, prio));
      } catch (const Error& e) {
        ++submit_rejected;  // typed fast rejection: overload or stopped
        TRKX_DEBUG << "trkx-serve: request " << i << " rejected: "
                   << e.what();
      }
      if (rate > 0.0) {
        // Open-loop pacing: sleep to the next slot of the offered rate.
        const auto next = t_start + std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>((i + 1) / rate));
        std::this_thread::sleep_until(next);
      }
    }
    for (std::future<serve::ServeResult>& f : futures) {
      try {
        const serve::ServeResult r = f.get();
        ++futures_ok;
        TRKX_DEBUG << "trkx-serve: " << r.tracks.size() << " tracks in "
                   << r.total_seconds() * 1e3 << " ms (level "
                   << r.degrade_level << ")";
      } catch (const Error& e) {
        ++futures_failed;  // typed failure: the degradation ladder at work
        TRKX_DEBUG << "trkx-serve: request failed: " << e.what();
      }
    }
    server.stop();

    std::ostringstream os;
    const serve::ServeCounters c = server.counters();
    os << "serve.accepted=" << c.accepted << "\n"
       << "serve.rejected.queue_full=" << c.rejected_queue_full << "\n"
       << "serve.rejected.shed_low=" << c.rejected_shed_low << "\n"
       << "serve.rejected.admit_fault=" << c.rejected_admit_fault << "\n"
       << "serve.shed.queued=" << c.shed_queued << "\n"
       << "serve.deadline.expired=" << c.deadline_expired << "\n"
       << "serve.stage.timeout=" << c.stage_timeouts << "\n"
       << "serve.retry=" << c.retries << "\n"
       << "serve.retry.exhausted=" << c.retries_exhausted << "\n"
       << "serve.completed=" << c.completed << "\n"
       << "serve.failed=" << c.failed << "\n"
       << "serve.fit.skipped=" << c.fit_skipped << "\n"
       << "serve.degrade.transitions=" << server.degrade_transitions() << "\n"
       << "serve.reload.ok=" << replicas.reloads_ok() << "\n"
       << "serve.reload.fail=" << replicas.reloads_failed() << "\n"
       << "serve.replica.generation=" << replicas.generation() << "\n"
       << "serve.submit.rejected=" << submit_rejected << "\n"
       << "serve.result.ok=" << futures_ok << "\n"
       << "serve.result.failed=" << futures_failed << "\n"
       << "serve.exit=ok\n";
    // The driver's stdout is its machine-readable contract with the CI
    // serving leg. NOLINT(trkx-io): counter output, not diagnostics.
    std::cout << os.str() << std::flush;
  } catch (const std::exception& e) {
    // An escape to here means the server *died* rather than degraded —
    // exactly what the exit code must make loud.
    TRKX_ERROR << "trkx-serve: fatal: " << e.what();
    exit_code = 1;
  }
  return exit_code;
}
