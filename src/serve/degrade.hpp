#pragma once

#include <cstdint>

#include "util/annotations.hpp"

namespace trkx::serve {

/// What the ladder tells the request path to do at the current level.
/// Level 0 runs the full five-stage pipeline; each higher level gives up
/// a little quality to shed a lot of work:
///
///   level 1 (shed-low)       admission rejects Priority::kLow requests
///   level 2 (skip-fit)       + the helix-fit stage is skipped
///   level 3 (coarse-filter)  + the edge filter cut is raised, so the
///                            GNN sees a much sparser graph
struct StagePlan {
  int level = 0;
  bool shed_low = false;
  bool skip_fit = false;
  /// Multiplier on FilterConfig::keep_threshold (1 = configured cut).
  float filter_threshold_scale = 1.0f;
};

const char* degrade_level_name(int level);

/// Hysteresis thresholds for the ladder. Occupancy is the admission
/// queue's depth/capacity in [0, 1]; a level change needs `sustain`
/// consecutive readings past the threshold, so one bursty tick cannot
/// flap the service between variants.
struct DegradeConfig {
  double high = 0.75;  ///< escalate when EWMA occupancy stays >= high
  double low = 0.25;   ///< recover when EWMA occupancy stays <= low
  double ewma_alpha = 0.3;
  int sustain = 3;
  int max_level = 3;
  float coarse_filter_scale = 4.0f;  ///< level-3 keep_threshold multiplier
};

/// The graceful-degradation ladder: a small deterministic state machine
/// fed queue-occupancy samples, publishing its level as the
/// serve.degrade.level gauge and every transition as a counter — each
/// step down in quality is an observable event, not a silent mode flip.
class DegradeController {
 public:
  explicit DegradeController(const DegradeConfig& config);

  /// Feed one occupancy sample in [0, 1]; returns the (possibly new)
  /// level. At most one level step per update.
  int update(double occupancy);

  int level() const;
  StagePlan plan() const;
  std::uint64_t transitions() const;
  double ewma() const;

  DegradeController(const DegradeController&) = delete;
  DegradeController& operator=(const DegradeController&) = delete;

 private:
  const DegradeConfig config_;
  mutable Mutex mutex_;
  int level_ TRKX_GUARDED_BY(mutex_) = 0;
  double ewma_ TRKX_GUARDED_BY(mutex_) = 0.0;
  bool ewma_seeded_ TRKX_GUARDED_BY(mutex_) = false;
  int above_ TRKX_GUARDED_BY(mutex_) = 0;
  int below_ TRKX_GUARDED_BY(mutex_) = 0;
  std::uint64_t transitions_ TRKX_GUARDED_BY(mutex_) = 0;
};

}  // namespace trkx::serve
