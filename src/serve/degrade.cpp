#include "serve/degrade.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace trkx::serve {

const char* degrade_level_name(int level) {
  switch (level) {
    case 0: return "normal";
    case 1: return "shed-low";
    case 2: return "skip-fit";
    case 3: return "coarse-filter";
  }
  return "?";
}

DegradeController::DegradeController(const DegradeConfig& config)
    : config_(config) {
  TRKX_CHECK_MSG(config_.low < config_.high,
                 "DegradeConfig: low must be below high");
  TRKX_CHECK_MSG(config_.sustain >= 1, "DegradeConfig: sustain must be >= 1");
  TRKX_CHECK_MSG(config_.max_level >= 0 && config_.max_level <= 3,
                 "DegradeConfig: max_level must be in [0, 3]");
  metrics().gauge("serve.degrade.level").set(0.0);
}

int DegradeController::update(double occupancy) {
  if (occupancy < 0.0) occupancy = 0.0;
  if (occupancy > 1.0) occupancy = 1.0;
  int new_level = 0;
  int old_level = 0;
  {
    LockGuard lock(mutex_);
    if (!ewma_seeded_) {
      ewma_ = occupancy;
      ewma_seeded_ = true;
    } else {
      ewma_ += config_.ewma_alpha * (occupancy - ewma_);
    }
    above_ = ewma_ >= config_.high ? above_ + 1 : 0;
    below_ = ewma_ <= config_.low ? below_ + 1 : 0;
    old_level = level_;
    if (above_ >= config_.sustain && level_ < config_.max_level) {
      ++level_;
      above_ = 0;
      ++transitions_;
    } else if (below_ >= config_.sustain && level_ > 0) {
      --level_;
      below_ = 0;
      ++transitions_;
    }
    new_level = level_;
  }
  if (new_level != old_level) {
    metrics().counter("serve.degrade.transitions").add(1);
    metrics().gauge("serve.degrade.level")
        .set(static_cast<double>(new_level));
    TRKX_WARN << "serve: degradation ladder "
              << degrade_level_name(old_level) << " -> "
              << degrade_level_name(new_level);
  }
  return new_level;
}

int DegradeController::level() const {
  LockGuard lock(mutex_);
  return level_;
}

double DegradeController::ewma() const {
  LockGuard lock(mutex_);
  return ewma_;
}

std::uint64_t DegradeController::transitions() const {
  LockGuard lock(mutex_);
  return transitions_;
}

StagePlan DegradeController::plan() const {
  StagePlan plan;
  plan.level = level();
  plan.shed_low = plan.level >= 1;
  plan.skip_fit = plan.level >= 2;
  plan.filter_threshold_scale =
      plan.level >= 3 ? config_.coarse_filter_scale : 1.0f;
  return plan;
}

}  // namespace trkx::serve
