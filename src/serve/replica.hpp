#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pipeline/pipeline.hpp"
#include "util/annotations.hpp"

namespace trkx::serve {

/// One immutable warm model replica: a fully constructed pipeline plus
/// provenance. Workers hold a shared_ptr snapshot for the duration of a
/// request, so a reload can swap the set's current replica without ever
/// invalidating in-flight work — the old replica dies when its last
/// request finishes.
struct ModelReplica {
  std::uint64_t generation = 0;
  std::string source;  ///< "warm" or the checkpoint file it came from
  std::unique_ptr<TrackingPipeline> pipeline;
};

/// Holder of the current replica with atomic swap semantics.
///
/// The reload path (SIGHUP / --reload-every in trkx-serve) builds the
/// *candidate* replica completely off to the side — clone the current
/// pipeline, read the checkpoint through the CRC-validating PR 5
/// envelope — and only then swaps the pointer under the lock. Any
/// failure (missing dir, torn file, bad CRC, injected
/// serve.checkpoint_reload fault) leaves the serving replica untouched:
/// a corrupt new checkpoint can cost an operator a reload, never the
/// service.
class ReplicaSet {
 public:
  /// `node_dim`/`edge_dim`/`config` must match what the checkpoints were
  /// trained with (clones are constructed from them on every reload).
  ReplicaSet(std::size_t node_dim, std::size_t edge_dim,
             const PipelineConfig& config);

  /// Install the initial warm replica (trained in-process or loaded from
  /// a pipeline save file). Generation 1.
  void install(std::unique_ptr<TrackingPipeline> pipeline,
               const std::string& source);

  /// Snapshot of the current replica (never null after install()).
  std::shared_ptr<const ModelReplica> acquire() const;

  /// Swap in GNN weights from the newest *valid* checkpoint under `dir`
  /// (torn/corrupt files are skipped by latest_checkpoint; the chosen
  /// file's CRC is verified before anything is deserialized). Returns
  /// true on swap; false — with the old replica still serving — on any
  /// failure.
  bool reload_from_checkpoint_dir(const std::string& dir);

  /// Same, from one explicit checkpoint file (no directory scan): a
  /// corrupt file fails the reload and keeps the old replica.
  bool reload_from_checkpoint_file(const std::string& path);

  std::uint64_t generation() const;
  std::uint64_t reloads_ok() const;
  std::uint64_t reloads_failed() const;

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

 private:
  /// Clone the current pipeline (weights copied via the save/load
  /// envelope), then overwrite its GNN store from `path`.
  std::unique_ptr<TrackingPipeline> clone_with_checkpoint(
      const std::string& path);
  bool reload_impl(const std::string& what, const std::string& path);

  const std::size_t node_dim_;
  const std::size_t edge_dim_;
  const PipelineConfig config_;
  mutable Mutex mutex_;
  std::shared_ptr<const ModelReplica> current_ TRKX_GUARDED_BY(mutex_);
  std::uint64_t generation_ TRKX_GUARDED_BY(mutex_) = 0;
  std::uint64_t reloads_ok_ TRKX_GUARDED_BY(mutex_) = 0;
  std::uint64_t reloads_failed_ TRKX_GUARDED_BY(mutex_) = 0;
};

}  // namespace trkx::serve
