#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <utility>

#include "detector/generator.hpp"
#include "pipeline/track_building.hpp"
#include "pipeline/track_fit.hpp"
#include "serve/error.hpp"

namespace trkx::serve {

/// Admission priority class. Under sustained overload the degradation
/// ladder sheds kLow first; kHigh is shed only by a full queue.
enum class Priority : int { kLow = 0, kNormal = 1, kHigh = 2 };

inline const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

/// Wall-clock budget for one request, propagated through all five stages.
/// A default-constructed Deadline is unbounded; after_ms() anchors one at
/// "now + budget". The inter-stage checks call expired() — steady_clock
/// so a wall-clock step cannot spuriously abandon live requests.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;
  static Deadline after_ms(std::int64_t ms) {
    Deadline d;
    if (ms > 0) {
      d.bounded_ = true;
      d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
  }
  static Deadline at(Clock::time_point when) {
    Deadline d;
    d.bounded_ = true;
    d.at_ = when;
    return d;
  }

  bool bounded() const { return bounded_; }
  bool expired() const { return bounded_ && Clock::now() >= at_; }
  /// Milliseconds past the deadline (0 when not expired / unbounded).
  double overshoot_ms() const {
    if (!bounded_) return 0.0;
    const auto d = Clock::now() - at_;
    return d.count() <= 0
               ? 0.0
               : std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  bool bounded_ = false;
  Clock::time_point at_{};
};

/// The five request-path stages, in execution order.
enum class Stage : int { kEmbed = 0, kFilter = 1, kGnn = 2, kBuild = 3,
                         kFit = 4 };
inline constexpr int kNumStages = 5;

inline const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kEmbed: return "embed";
    case Stage::kFilter: return "filter";
    case Stage::kGnn: return "gnn";
    case Stage::kBuild: return "build";
    case Stage::kFit: return "fit";
  }
  return "?";
}

/// What one request produced: the reconstructed tracks plus enough
/// telemetry (per-stage seconds, degradation flags, replica generation)
/// for the caller to reason about the latency it observed.
struct ServeResult {
  std::vector<TrackCandidate> tracks;
  std::vector<FittedTrack> fits;      ///< empty when fit was skipped
  double stage_seconds[kNumStages] = {0, 0, 0, 0, 0};
  /// Submit-to-completion wall time (queue wait + all stage attempts),
  /// measured by the worker — the number the serve.latency.ms histogram
  /// and the serving bench percentiles are built from.
  double latency_seconds = 0;
  int degrade_level = 0;    ///< ladder level the request ran at
  bool fit_skipped = false; ///< degraded: fit stage was shed
  std::uint64_t replica_generation = 0;
  std::uint32_t retries = 0;  ///< stage attempts beyond the first

  double total_seconds() const {
    double t = 0;
    for (double s : stage_seconds) t += s;
    return t;
  }
};

/// One in-flight request: the event payload, its admission metadata, and
/// the promise the worker fulfils. Requests are moved (never copied)
/// through the admission queue.
struct Request {
  std::uint64_t id = 0;
  Priority priority = Priority::kNormal;
  Deadline deadline;
  Deadline::Clock::time_point submitted_at{};
  Event event;
  std::promise<ServeResult> result;

  Request() = default;
  Request(std::uint64_t id, Priority priority, Deadline deadline, Event event)
      : id(id),
        priority(priority),
        deadline(deadline),
        submitted_at(Deadline::Clock::now()),
        event(std::move(event)) {}
  Request(Request&&) = default;
  Request& operator=(Request&&) = default;
};

}  // namespace trkx::serve
