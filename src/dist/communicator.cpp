#include "dist/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace trkx {

int Communicator::size() const { return runtime_->num_ranks_; }

void Communicator::barrier() {
  if (runtime_->num_ranks_ > 1) runtime_->barrier_->arrive_and_wait();
}

void Communicator::all_reduce_sum(std::span<float> data) {
  WallTimer timer;
  DistRuntime& rt = *runtime_;
  const int p = rt.num_ranks_;
  if (p > 1) {
    // Publish this rank's buffer.
    rt.contrib_[static_cast<std::size_t>(rank_)] = data.data();
    if (rank_ == 0) {
      rt.current_count_ = data.size();
      if (rt.reduce_buf_.size() < data.size()) rt.reduce_buf_.resize(data.size());
    }
    barrier();
    TRKX_CHECK_MSG(rt.current_count_ == data.size(),
                   "all_reduce_sum called with mismatched sizes across ranks");
    // Reduce-scatter: each rank owns a contiguous chunk and sums it across
    // all contributions in fixed rank order (bitwise deterministic).
    const std::size_t n = data.size();
    const std::size_t chunk = (n + static_cast<std::size_t>(p) - 1) /
                              static_cast<std::size_t>(p);
    const std::size_t begin =
        std::min(n, chunk * static_cast<std::size_t>(rank_));
    const std::size_t end = std::min(n, begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      float acc = 0.0f;
      for (int r = 0; r < p; ++r) acc += rt.contrib_[static_cast<std::size_t>(r)][i];
      rt.reduce_buf_[i] = acc;
    }
    barrier();
    // All-gather: copy the full reduced buffer back.
    std::memcpy(data.data(), rt.reduce_buf_.data(), n * sizeof(float));
    barrier();
  }
  ++stats_.all_reduce_calls;
  stats_.all_reduce_bytes += data.size() * sizeof(float);
  stats_.modeled_seconds +=
      rt.cost_model_.seconds(data.size() * sizeof(float), p);
  stats_.measured_seconds += timer.seconds();
}

double Communicator::all_reduce_scalar(double value) {
  float v = static_cast<float>(value);
  all_reduce_sum(std::span<float>(&v, 1));
  return static_cast<double>(v);
}

void Communicator::broadcast(std::span<float> data, int root) {
  DistRuntime& rt = *runtime_;
  if (rt.num_ranks_ <= 1) return;
  rt.contrib_[static_cast<std::size_t>(rank_)] = data.data();
  if (rank_ == 0) rt.current_count_ = data.size();
  barrier();
  TRKX_CHECK(rt.current_count_ == data.size());
  if (rank_ != root) {
    std::memcpy(data.data(), rt.contrib_[static_cast<std::size_t>(root)],
                data.size() * sizeof(float));
  }
  barrier();
}

std::vector<float> Communicator::all_gather(std::span<const float> local) {
  WallTimer timer;
  DistRuntime& rt = *runtime_;
  const int p = rt.num_ranks_;
  std::vector<float> out;
  if (p == 1) {
    out.assign(local.begin(), local.end());
  } else {
    rt.gather_ptrs_[static_cast<std::size_t>(rank_)] = local.data();
    rt.gather_sizes_[static_cast<std::size_t>(rank_)] = local.size();
    barrier();
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) total += rt.gather_sizes_[static_cast<std::size_t>(r)];
    out.reserve(total);
    for (int r = 0; r < p; ++r) {
      const auto* ptr = rt.gather_ptrs_[static_cast<std::size_t>(r)];
      out.insert(out.end(), ptr, ptr + rt.gather_sizes_[static_cast<std::size_t>(r)]);
    }
    barrier();  // contributions stay alive until everyone copied
  }
  ++stats_.all_reduce_calls;
  stats_.all_reduce_bytes += out.size() * sizeof(float);
  // Ring all-gather moves (P-1)/P of the total bytes with P-1 latency
  // steps: approximate with half an all-reduce of the same size.
  stats_.modeled_seconds +=
      0.5 * rt.cost_model_.seconds(out.size() * sizeof(float), p);
  stats_.measured_seconds += timer.seconds();
  return out;
}

DistRuntime::DistRuntime(int num_ranks, AllReduceCostModel cost_model)
    : num_ranks_(num_ranks), cost_model_(cost_model) {
  TRKX_CHECK(num_ranks >= 1);
  if (num_ranks > 1)
    barrier_ = std::make_unique<std::barrier<>>(num_ranks);
  contrib_.assign(static_cast<std::size_t>(num_ranks), nullptr);
  gather_ptrs_.assign(static_cast<std::size_t>(num_ranks), nullptr);
  gather_sizes_.assign(static_cast<std::size_t>(num_ranks), 0);
  for (int r = 0; r < num_ranks; ++r)
    comms_.push_back(Communicator(this, r));
}

DistRuntime::~DistRuntime() = default;

void DistRuntime::run(const std::function<void(Communicator&)>& fn) {
  if (num_ranks_ == 1) {
    fn(comms_[0]);
    return;
  }
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  Mutex error_mutex;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(comms_[static_cast<std::size_t>(r)]);
      } catch (...) {
        LockGuard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

CommStats DistRuntime::aggregate_stats() const {
  CommStats agg;
  for (const auto& c : comms_) {
    agg.all_reduce_calls = std::max(agg.all_reduce_calls,
                                    c.stats().all_reduce_calls);
    agg.all_reduce_bytes = std::max(agg.all_reduce_bytes,
                                    c.stats().all_reduce_bytes);
    agg.modeled_seconds = std::max(agg.modeled_seconds,
                                   c.stats().modeled_seconds);
    agg.measured_seconds = std::max(agg.measured_seconds,
                                    c.stats().measured_seconds);
  }
  return agg;
}

}  // namespace trkx
