#include "dist/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace trkx {

namespace {

/// Collective timeout from TRKX_COMM_TIMEOUT_MS (0 / unset = no timeout).
double env_comm_timeout_seconds() {
  const double ms = env::get_double("TRKX_COMM_TIMEOUT_MS");
  return ms > 0.0 ? ms / 1000.0 : 0.0;
}

}  // namespace

TimeoutBarrier::TimeoutBarrier(int parties, double timeout_seconds)
    : parties_(parties), timeout_seconds_(timeout_seconds) {
  TRKX_CHECK(parties >= 1);
}

void TimeoutBarrier::arrive_and_wait() {
  UniqueLock lock(mutex_);
  if (aborted_) throw CommTimeoutError(abort_reason_);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  const bool bounded = timeout_seconds_ > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(bounded ? timeout_seconds_ : 0.0));
  while (generation_ == my_generation && !aborted_) {
    if (!bounded) {
      cv_.wait(lock);
      continue;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        generation_ == my_generation && !aborted_) {
      // First rank to time out poisons the barrier so every other waiter
      // (now and later) releases too — all survivors see the same error
      // instead of a partial deadlock.
      aborted_ = true;
      std::ostringstream os;
      os << "collective timed out after " << timeout_seconds_
         << "s waiting for " << parties_ - arrived_
         << " of " << parties_ << " rank(s)";
      abort_reason_ = os.str();
      cv_.notify_all();
      break;
    }
  }
  if (aborted_) throw CommTimeoutError(abort_reason_);
}

void TimeoutBarrier::abort(const std::string& reason) {
  {
    UniqueLock lock(mutex_);
    if (!aborted_) {
      aborted_ = true;
      abort_reason_ = "collective aborted: " + reason;
    }
  }
  cv_.notify_all();
}

bool TimeoutBarrier::aborted() const {
  UniqueLock lock(mutex_);
  return aborted_;
}

int Communicator::size() const { return runtime_->num_ranks_; }

void Communicator::barrier() {
  if (runtime_->num_ranks_ > 1) runtime_->barrier_->arrive_and_wait();
}

void Communicator::all_reduce_sum(std::span<float> data) {
  fault::inject("dist.all_reduce", rank_);
  WallTimer timer;
  DistRuntime& rt = *runtime_;
  const int p = rt.num_ranks_;
  if (p > 1) {
    // Publish this rank's buffer.
    rt.contrib_[static_cast<std::size_t>(rank_)] = data.data();
    if (rank_ == 0) {
      rt.current_count_ = data.size();
      if (rt.reduce_buf_.size() < data.size()) rt.reduce_buf_.resize(data.size());
    }
    barrier();
    TRKX_CHECK_MSG(rt.current_count_ == data.size(),
                   "all_reduce_sum called with mismatched sizes across ranks");
    // Reduce-scatter: each rank owns a contiguous chunk and sums it across
    // all contributions in fixed rank order (bitwise deterministic).
    const std::size_t n = data.size();
    const std::size_t chunk = (n + static_cast<std::size_t>(p) - 1) /
                              static_cast<std::size_t>(p);
    const std::size_t begin =
        std::min(n, chunk * static_cast<std::size_t>(rank_));
    const std::size_t end = std::min(n, begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      float acc = 0.0f;
      for (int r = 0; r < p; ++r) acc += rt.contrib_[static_cast<std::size_t>(r)][i];
      rt.reduce_buf_[i] = acc;
    }
    barrier();
    // All-gather: copy the full reduced buffer back.
    std::memcpy(data.data(), rt.reduce_buf_.data(), n * sizeof(float));
    barrier();
  }
  ++stats_.all_reduce_calls;
  stats_.all_reduce_bytes += data.size() * sizeof(float);
  stats_.modeled_seconds +=
      rt.cost_model_.seconds(data.size() * sizeof(float), p);
  stats_.measured_seconds += timer.seconds();
}

double Communicator::all_reduce_scalar(double value) {
  float v = static_cast<float>(value);
  all_reduce_sum(std::span<float>(&v, 1));
  return static_cast<double>(v);
}

void Communicator::broadcast(std::span<float> data, int root) {
  DistRuntime& rt = *runtime_;
  if (rt.num_ranks_ <= 1) return;
  rt.contrib_[static_cast<std::size_t>(rank_)] = data.data();
  if (rank_ == 0) rt.current_count_ = data.size();
  barrier();
  TRKX_CHECK(rt.current_count_ == data.size());
  if (rank_ != root) {
    std::memcpy(data.data(), rt.contrib_[static_cast<std::size_t>(root)],
                data.size() * sizeof(float));
  }
  barrier();
}

std::vector<float> Communicator::all_gather(std::span<const float> local) {
  WallTimer timer;
  DistRuntime& rt = *runtime_;
  const int p = rt.num_ranks_;
  std::vector<float> out;
  if (p == 1) {
    out.assign(local.begin(), local.end());
  } else {
    rt.gather_ptrs_[static_cast<std::size_t>(rank_)] = local.data();
    rt.gather_sizes_[static_cast<std::size_t>(rank_)] = local.size();
    barrier();
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) total += rt.gather_sizes_[static_cast<std::size_t>(r)];
    out.reserve(total);
    for (int r = 0; r < p; ++r) {
      const auto* ptr = rt.gather_ptrs_[static_cast<std::size_t>(r)];
      out.insert(out.end(), ptr, ptr + rt.gather_sizes_[static_cast<std::size_t>(r)]);
    }
    barrier();  // contributions stay alive until everyone copied
  }
  ++stats_.all_reduce_calls;
  stats_.all_reduce_bytes += out.size() * sizeof(float);
  // Ring all-gather moves (P-1)/P of the total bytes with P-1 latency
  // steps: approximate with half an all-reduce of the same size.
  stats_.modeled_seconds +=
      0.5 * rt.cost_model_.seconds(out.size() * sizeof(float), p);
  stats_.measured_seconds += timer.seconds();
  return out;
}

DistRuntime::DistRuntime(int num_ranks, AllReduceCostModel cost_model,
                         double comm_timeout_seconds)
    : num_ranks_(num_ranks), cost_model_(cost_model) {
  TRKX_CHECK(num_ranks >= 1);
  comm_timeout_seconds_ = comm_timeout_seconds < 0.0
                              ? env_comm_timeout_seconds()
                              : comm_timeout_seconds;
  if (num_ranks > 1)
    barrier_ =
        std::make_unique<TimeoutBarrier>(num_ranks, comm_timeout_seconds_);
  contrib_.assign(static_cast<std::size_t>(num_ranks), nullptr);
  gather_ptrs_.assign(static_cast<std::size_t>(num_ranks), nullptr);
  gather_sizes_.assign(static_cast<std::size_t>(num_ranks), 0);
  rank_errors_.assign(static_cast<std::size_t>(num_ranks), nullptr);
  for (int r = 0; r < num_ranks; ++r)
    comms_.push_back(Communicator(this, r));
}

DistRuntime::~DistRuntime() = default;

void DistRuntime::run(const std::function<void(Communicator&)>& fn) {
  rank_errors_.assign(static_cast<std::size_t>(num_ranks_), nullptr);
  if (num_ranks_ == 1) {
    try {
      fn(comms_[0]);
    } catch (...) {
      rank_errors_[0] = std::current_exception();
      throw;
    }
    return;
  }
  // A previous failed run leaves the barrier poisoned; start fresh so a
  // runtime can host another attempt (e.g. resume after a rank-kill).
  if (barrier_->aborted())
    barrier_ =
        std::make_unique<TimeoutBarrier>(num_ranks_, comm_timeout_seconds_);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(comms_[static_cast<std::size_t>(r)]);
      } catch (const std::exception& e) {
        rank_errors_[static_cast<std::size_t>(r)] = std::current_exception();
        // Fail fast: without this, survivors sit in the barrier until the
        // timeout (or forever when none is configured).
        std::ostringstream os;
        os << "rank " << r << " failed: " << e.what();
        TRKX_WARN << "dist: " << os.str();
        barrier_->abort(os.str());
      } catch (...) {
        rank_errors_[static_cast<std::size_t>(r)] = std::current_exception();
        std::ostringstream os;
        os << "rank " << r << " failed with a non-standard exception";
        barrier_->abort(os.str());
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root cause: the rank that actually died (RankKilledError,
  // Error, ...) over the survivors' secondary CommTimeoutErrors.
  std::exception_ptr first;
  for (const std::exception_ptr& err : rank_errors_) {
    if (!err) continue;
    if (!first) first = err;
    try {
      std::rethrow_exception(err);
    } catch (const CommTimeoutError&) {
      // secondary failure; keep scanning for a root cause
    } catch (...) {
      first = err;
      break;
    }
  }
  if (first) std::rethrow_exception(first);
}

std::exception_ptr DistRuntime::rank_error(int rank) const {
  TRKX_CHECK(rank >= 0 && rank < num_ranks_);
  return rank_errors_[static_cast<std::size_t>(rank)];
}

CommStats DistRuntime::aggregate_stats() const {
  CommStats agg;
  for (const auto& c : comms_) {
    agg.all_reduce_calls = std::max(agg.all_reduce_calls,
                                    c.stats().all_reduce_calls);
    agg.all_reduce_bytes = std::max(agg.all_reduce_bytes,
                                    c.stats().all_reduce_bytes);
    agg.modeled_seconds = std::max(agg.modeled_seconds,
                                   c.stats().modeled_seconds);
    agg.measured_seconds = std::max(agg.measured_seconds,
                                    c.stats().measured_seconds);
  }
  return agg;
}

}  // namespace trkx
