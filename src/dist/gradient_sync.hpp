#pragma once

#include "dist/communicator.hpp"
#include "nn/parameter.hpp"

namespace trkx {

/// Strategy for synchronising gradients across DDP ranks after the local
/// backward pass (Section III-D of the paper).
enum class SyncStrategy {
  /// One all-reduce per parameter matrix — the baseline DDP behaviour.
  /// The IGNN has dozens of small f×f MLP weights, so this pays the
  /// all-reduce latency α once per matrix.
  kPerTensor,
  /// Stack every parameter gradient into one flat buffer and issue a
  /// single all-reduce — the paper's optimisation: one α, same bytes.
  kCoalesced,
};

/// All-reduce the gradients in `store` across ranks and divide by the
/// rank count (so every rank holds the mean gradient). Ranks must call
/// this collectively with identically-shaped stores.
void synchronize_gradients(Communicator& comm, ParameterStore& store,
                           SyncStrategy strategy);

}  // namespace trkx
