#pragma once

#include <barrier>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace trkx {

/// α–β (latency–bandwidth) model of a ring all-reduce on a GPU cluster.
///
/// The in-process runtime below executes all-reduces for real (threads and
/// shared memory), but this repo runs on one CPU, so wall-clock numbers
/// cannot show NVLink-scale effects. The model reports what each call
/// *would* cost on hardware like the paper's Perlmutter nodes:
///   T(bytes, P) = 2(P-1)·α + 2·(P-1)/P · bytes / β
/// Defaults approximate NCCL over NVLink 3.0 (α ≈ 15 µs per step,
/// β ≈ 100 GB/s unidirectional, figures from the paper's Section IV-A).
struct AllReduceCostModel {
  double alpha_seconds = 15e-6;
  double beta_bytes_per_second = 100e9;

  double seconds(std::size_t bytes, int num_ranks) const {
    if (num_ranks <= 1) return 0.0;
    const double p = static_cast<double>(num_ranks);
    const double bytes_d = static_cast<double>(bytes);
    // NOLINT(trkx-div-guard): p >= 2 after the early return; beta > 0
    const double bw = (p - 1.0) / p / beta_bytes_per_second * bytes_d;
    return 2.0 * (p - 1.0) * alpha_seconds + 2.0 * bw;
  }
};

/// Counters a Communicator accumulates per rank.
struct CommStats {
  std::size_t all_reduce_calls = 0;
  std::size_t all_reduce_bytes = 0;
  double modeled_seconds = 0.0;  ///< cost-model time for this rank's calls
  double measured_seconds = 0.0; ///< wall time actually spent in all-reduce
};

class DistRuntime;

/// Per-rank handle for collective communication. Semantics follow MPI /
/// NCCL: every rank must call each collective the same number of times
/// with the same buffer size, and results are bitwise identical across
/// ranks (reduction order is fixed by rank).
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  void barrier();

  /// In-place sum across ranks; every rank ends with the identical total.
  /// Implemented as reduce-scatter + all-gather over shared memory (the
  /// data movement pattern of a ring all-reduce).
  void all_reduce_sum(std::span<float> data);

  /// Sum a scalar across ranks (convenience for loss/metric averaging).
  double all_reduce_scalar(double value);

  /// Broadcast from root into data on every rank.
  void broadcast(std::span<float> data, int root);

  /// Concatenate every rank's `local` contribution in rank order; all
  /// ranks receive the identical concatenation. Contributions may have
  /// different lengths (an all-gatherv). Used by the 1D-partitioned
  /// graph kernels to assemble the full feature matrix from per-rank
  /// row blocks.
  std::vector<float> all_gather(std::span<const float> local);

  const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  friend class DistRuntime;
  Communicator(DistRuntime* runtime, int rank)
      : runtime_(runtime), rank_(rank) {}
  DistRuntime* runtime_;
  int rank_;
  CommStats stats_;
};

/// Hosts P ranks as threads sharing one address space — the stand-in for
/// the paper's one-process-per-GPU DDP launch. See DESIGN.md §2 for why
/// this substitution preserves the phenomena being measured.
class DistRuntime {
 public:
  explicit DistRuntime(int num_ranks,
                       AllReduceCostModel cost_model = AllReduceCostModel{});
  ~DistRuntime();

  int size() const { return num_ranks_; }

  /// Run fn(comm) on every rank concurrently; returns when all finish.
  /// Exceptions from rank functions are rethrown (first one wins).
  void run(const std::function<void(Communicator&)>& fn);

  /// Stats aggregated over ranks from the last run() (max over ranks for
  /// times, rank-0 values for call counts).
  CommStats aggregate_stats() const;

 private:
  friend class Communicator;
  int num_ranks_;
  AllReduceCostModel cost_model_;
  std::unique_ptr<std::barrier<>> barrier_;
  // The exchange buffers below are synchronised by barrier_ phases, not a
  // mutex (each collective is publish → barrier → read → barrier, with
  // writers touching disjoint rank slots / chunks between barriers), so
  // they carry no TRKX_GUARDED_BY capability — the std::barrier
  // arrive_and_wait provides the happens-before edges TSan checks.
  std::vector<float*> contrib_;
  std::vector<const float*> gather_ptrs_;
  std::vector<std::size_t> gather_sizes_;
  std::vector<float> reduce_buf_;
  std::size_t current_count_ = 0;
  std::vector<Communicator> comms_;
};

}  // namespace trkx
