#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/annotations.hpp"

namespace trkx {

/// α–β (latency–bandwidth) model of a ring all-reduce on a GPU cluster.
///
/// The in-process runtime below executes all-reduces for real (threads and
/// shared memory), but this repo runs on one CPU, so wall-clock numbers
/// cannot show NVLink-scale effects. The model reports what each call
/// *would* cost on hardware like the paper's Perlmutter nodes:
///   T(bytes, P) = 2(P-1)·α + 2·(P-1)/P · bytes / β
/// Defaults approximate NCCL over NVLink 3.0 (α ≈ 15 µs per step,
/// β ≈ 100 GB/s unidirectional, figures from the paper's Section IV-A).
struct AllReduceCostModel {
  double alpha_seconds = 15e-6;
  double beta_bytes_per_second = 100e9;

  double seconds(std::size_t bytes, int num_ranks) const {
    if (num_ranks <= 1) return 0.0;
    const double p = static_cast<double>(num_ranks);
    const double bytes_d = static_cast<double>(bytes);
    // NOLINT(trkx-div-guard): p >= 2 after the early return; beta > 0
    const double bw = (p - 1.0) / p / beta_bytes_per_second * bytes_d;
    return 2.0 * (p - 1.0) * alpha_seconds + 2.0 * bw;
  }
};

/// Counters a Communicator accumulates per rank.
struct CommStats {
  std::size_t all_reduce_calls = 0;
  std::size_t all_reduce_bytes = 0;
  double modeled_seconds = 0.0;  ///< cost-model time for this rank's calls
  double measured_seconds = 0.0; ///< wall time actually spent in all-reduce
};

/// Reusable cyclic barrier with a timeout and a poison ("abort") path —
/// what makes a dead rank survivable. std::barrier blocks forever when a
/// participant never arrives; here every waiter bounds its wait, and the
/// first rank to notice trouble (timeout or an exception anywhere)
/// poisons the barrier so *every* current and future wait throws
/// CommTimeoutError instead of deadlocking.
class TimeoutBarrier {
 public:
  /// `timeout_seconds` <= 0 waits forever (the pre-fault-tolerance
  /// behaviour, still the default for fully trusted in-process runs).
  TimeoutBarrier(int parties, double timeout_seconds);

  /// Block until all parties arrive. Throws CommTimeoutError when the
  /// timeout expires or the barrier is (or becomes) aborted.
  void arrive_and_wait();

  /// Poison the barrier: wake all waiters, make every present and future
  /// arrive_and_wait throw CommTimeoutError citing `reason`.
  void abort(const std::string& reason);

  bool aborted() const;

 private:
  const int parties_;
  const double timeout_seconds_;
  mutable Mutex mutex_;
  CondVar cv_;
  int arrived_ TRKX_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ TRKX_GUARDED_BY(mutex_) = 0;
  bool aborted_ TRKX_GUARDED_BY(mutex_) = false;
  std::string abort_reason_ TRKX_GUARDED_BY(mutex_);
};

class DistRuntime;

/// Per-rank handle for collective communication. Semantics follow MPI /
/// NCCL: every rank must call each collective the same number of times
/// with the same buffer size, and results are bitwise identical across
/// ranks (reduction order is fixed by rank).
///
/// Fault behaviour: when any rank dies or hangs, every other rank's
/// in-flight (and subsequent) collective throws CommTimeoutError rather
/// than deadlocking — callers unwind, checkpoint, and exit resumable.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  void barrier();

  /// In-place sum across ranks; every rank ends with the identical total.
  /// Implemented as reduce-scatter + all-gather over shared memory (the
  /// data movement pattern of a ring all-reduce).
  void all_reduce_sum(std::span<float> data);

  /// Sum a scalar across ranks (convenience for loss/metric averaging).
  double all_reduce_scalar(double value);

  /// Broadcast from root into data on every rank.
  void broadcast(std::span<float> data, int root);

  /// Concatenate every rank's `local` contribution in rank order; all
  /// ranks receive the identical concatenation. Contributions may have
  /// different lengths (an all-gatherv). Used by the 1D-partitioned
  /// graph kernels to assemble the full feature matrix from per-rank
  /// row blocks.
  std::vector<float> all_gather(std::span<const float> local);

  const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  friend class DistRuntime;
  Communicator(DistRuntime* runtime, int rank)
      : runtime_(runtime), rank_(rank) {}
  DistRuntime* runtime_;
  int rank_;
  CommStats stats_;
};

/// Hosts P ranks as threads sharing one address space — the stand-in for
/// the paper's one-process-per-GPU DDP launch. See DESIGN.md §2 for why
/// this substitution preserves the phenomena being measured.
class DistRuntime {
 public:
  /// `comm_timeout_seconds` bounds every collective wait: < 0 reads the
  /// TRKX_COMM_TIMEOUT_MS environment variable (unset/empty = no
  /// timeout); 0 = no timeout; > 0 is the bound in seconds.
  explicit DistRuntime(int num_ranks,
                       AllReduceCostModel cost_model = AllReduceCostModel{},
                       double comm_timeout_seconds = -1.0);
  ~DistRuntime();

  int size() const { return num_ranks_; }

  /// Run fn(comm) on every rank concurrently; returns when all finish.
  /// A rank whose fn throws poisons the shared barrier, so surviving
  /// ranks fail fast with CommTimeoutError instead of waiting out the
  /// timeout. The most informative exception is rethrown: the first (by
  /// rank) non-CommTimeoutError root cause if any rank recorded one,
  /// otherwise the first error seen.
  void run(const std::function<void(Communicator&)>& fn);

  /// Per-rank exception from the last run() (nullptr = rank succeeded).
  /// Lets a supervisor distinguish the rank that died (RankKilledError)
  /// from the survivors that timed out (CommTimeoutError).
  std::exception_ptr rank_error(int rank) const;

  /// The effective collective timeout in seconds (0 = none).
  double comm_timeout_seconds() const { return comm_timeout_seconds_; }

  /// Stats aggregated over ranks from the last run() (max over ranks for
  /// times, rank-0 values for call counts).
  CommStats aggregate_stats() const;

 private:
  friend class Communicator;
  int num_ranks_;
  AllReduceCostModel cost_model_;
  double comm_timeout_seconds_ = 0.0;
  std::unique_ptr<TimeoutBarrier> barrier_;
  // The exchange buffers below are synchronised by barrier_ phases, not a
  // mutex (each collective is publish → barrier → read → barrier, with
  // writers touching disjoint rank slots / chunks between barriers), so
  // they carry no TRKX_GUARDED_BY capability — the barrier's
  // arrive_and_wait provides the happens-before edges TSan checks.
  std::vector<float*> contrib_;
  std::vector<const float*> gather_ptrs_;
  std::vector<std::size_t> gather_sizes_;
  std::vector<float> reduce_buf_;
  std::size_t current_count_ = 0;
  std::vector<Communicator> comms_;
  // Written by thread r into slot r, read after join — no lock needed.
  std::vector<std::exception_ptr> rank_errors_;
};

}  // namespace trkx
