#include "dist/gradient_sync.hpp"

namespace trkx {

void synchronize_gradients(Communicator& comm, ParameterStore& store,
                           SyncStrategy strategy) {
  const float inv_p = 1.0f / static_cast<float>(comm.size());
  switch (strategy) {
    case SyncStrategy::kPerTensor: {
      for (auto& p : store.params()) {
        comm.all_reduce_sum(p.grad.flat());
        for (float& g : p.grad.flat()) g *= inv_p;
      }
      break;
    }
    case SyncStrategy::kCoalesced: {
      std::vector<float> flat = store.flatten_grads();
      comm.all_reduce_sum(std::span<float>(flat.data(), flat.size()));
      for (float& g : flat) g *= inv_p;
      store.unflatten_grads(flat);
      break;
    }
  }
}

}  // namespace trkx
