#include "dist/gradient_sync.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/numerics.hpp"

namespace trkx {

void synchronize_gradients(Communicator& comm, ParameterStore& store,
                           SyncStrategy strategy) {
  TRKX_TRACE_SPAN("allreduce", "comms");
  TRKX_CHECK(comm.size() > 0);
  const float inv_p = 1.0f / static_cast<float>(comm.size());
  std::size_t calls = 0;
  std::size_t bytes = 0;
  switch (strategy) {
    case SyncStrategy::kPerTensor: {
      for (auto& p : store.params()) {
        comm.all_reduce_sum(p.grad.flat());
        for (float& g : p.grad.flat()) g *= inv_p;
        ++calls;
        bytes += p.grad.flat().size() * sizeof(float);
      }
      break;
    }
    case SyncStrategy::kCoalesced: {
      std::vector<float> flat = store.flatten_grads();
      comm.all_reduce_sum(std::span<float>(flat.data(), flat.size()));
      for (float& g : flat) g *= inv_p;
      store.unflatten_grads(flat);
      calls = 1;
      bytes = flat.size() * sizeof(float);
      break;
    }
  }
  // Under TRKX_CHECK_NUMERICS, verify the synced gradients before the
  // optimizer consumes them: one rank feeding a NaN into the all-reduce
  // poisons every replica, so name the parameter while the trail is warm.
  if (check_numerics_enabled()) {
    for (const auto& p : store.params()) {
      TRKX_CHECK_MSG(all_finite(p.grad),
                     "TRKX_CHECK_NUMERICS: non-finite synced gradient for "
                     "parameter '"
                         << p.name << "'");
    }
  }
  // Per-strategy counters make the paper's §III-D tradeoff directly
  // readable from one metrics dump: same bytes, fewer calls when
  // coalesced (each call pays the all-reduce latency α once).
  const char* tag =
      strategy == SyncStrategy::kPerTensor ? "per_tensor" : "coalesced";
  metrics().counter(std::string("allreduce.") + tag + ".calls").add(calls);
  metrics().counter(std::string("allreduce.") + tag + ".bytes").add(bytes);
  metrics().counter("allreduce.calls").add(calls);
  metrics().counter("allreduce.bytes").add(bytes);
}

}  // namespace trkx
