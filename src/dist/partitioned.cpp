#include "dist/partitioned.hpp"

#include <cmath>
#include <cstring>

#include "sparse/spgemm.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace trkx {

RowPartition partition_rows(std::size_t n, int rank, int size) {
  TRKX_CHECK(size >= 1 && rank >= 0 && rank < size);
  const std::size_t chunk =
      (n + static_cast<std::size_t>(size) - 1) / static_cast<std::size_t>(size);
  RowPartition p;
  p.begin = std::min(n, chunk * static_cast<std::size_t>(rank));
  p.end = std::min(n, p.begin + chunk);
  return p;
}

LocalShard make_shard(const CsrMatrix& a, const Matrix& x, int rank,
                      int size) {
  TRKX_CHECK(a.rows() == x.rows());
  LocalShard shard;
  shard.rows = partition_rows(a.rows(), rank, size);
  std::vector<std::uint32_t> idx;
  idx.reserve(shard.rows.count());
  for (std::size_t r = shard.rows.begin; r < shard.rows.end; ++r)
    idx.push_back(static_cast<std::uint32_t>(r));
  shard.a_rows = a.select_rows(idx);
  shard.x_rows = row_gather(x, idx);
  return shard;
}

Matrix partitioned_spmm(Communicator& comm, const LocalShard& shard,
                        std::size_t feature_dim) {
  TRKX_CHECK(shard.x_rows.cols() == feature_dim);
  // Assemble the global X: contributions concatenate in rank order, and
  // row partitions are contiguous in rank order, so the concatenation IS
  // the global row-major X.
  const std::vector<float> global = comm.all_gather(
      std::span<const float>(shard.x_rows.data(), shard.x_rows.size()));
  TRKX_CHECK_MSG(global.size() % feature_dim == 0,
                 "gathered feature matrix is ragged");
  const std::size_t n = global.size() / feature_dim;
  TRKX_CHECK_MSG(n == shard.a_rows.cols(),
                 "gathered rows do not match adjacency width");
  Matrix x_global(n, feature_dim);
  std::memcpy(x_global.data(), global.data(), global.size() * sizeof(float));
  return spmm(shard.a_rows, x_global);
}

Matrix partitioned_power_iteration(Communicator& comm,
                                   const LocalShard& shard,
                                   std::size_t iterations) {
  LocalShard state = shard;
  const std::size_t f = state.x_rows.cols();
  for (std::size_t it = 0; it < iterations; ++it) {
    Matrix y = partitioned_spmm(comm, state, f);
    // Global 2-norm via an all-reduced partial sum.
    double partial = 0.0;
    for (float v : y.flat()) partial += static_cast<double>(v) * v;
    const double norm = std::sqrt(comm.all_reduce_scalar(partial));
    if (norm > 0.0) {
      const float inv = static_cast<float>(1.0 / norm);
      for (float& v : y.flat()) v *= inv;
    }
    state.x_rows = std::move(y);
  }
  return state.x_rows;
}

}  // namespace trkx
