#pragma once

#include "dist/communicator.hpp"
#include "sparse/csr.hpp"

namespace trkx {

/// 1D row-partitioned distributed sparse kernels, after CAGNET (Tripathy
/// et al., the codebase the paper extends): the adjacency A and feature
/// matrix X are split into contiguous row blocks across P ranks; each
/// layer of full-graph distributed GNN training computes its local rows of
/// A·X by all-gathering X and multiplying against the local row block of A.
///
/// This is the communication pattern whose cost grows with the *graph*
/// (all-gather of n×f features per layer), in contrast to the paper's
/// minibatch DDP whose communication is bounded by the model size — the
/// quantitative argument for the DDP design at Exa.TrkX's graph sizes.

/// Contiguous row range [begin, end) owned by `rank` of `size` for n rows.
struct RowPartition {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t count() const { return end - begin; }
};
RowPartition partition_rows(std::size_t n, int rank, int size);

/// The local shard one rank holds: its rows of A (columns still global)
/// and its rows of X.
struct LocalShard {
  CsrMatrix a_rows;  ///< partition.count() × n
  Matrix x_rows;     ///< partition.count() × f
  RowPartition rows;
};

/// Split a full A and X into the shard for `rank`.
LocalShard make_shard(const CsrMatrix& a, const Matrix& x, int rank,
                      int size);

/// Distributed Y_local = A_local · X_global:
/// all-gathers every rank's X rows (rank order = row order), then runs a
/// local SpMM. Collective: every rank must call it together. Returns this
/// rank's row block of A·X.
Matrix partitioned_spmm(Communicator& comm, const LocalShard& shard,
                        std::size_t feature_dim);

/// Distributed power iteration on the normalised adjacency — a
/// self-contained consumer of partitioned_spmm used by tests and the
/// bench: returns this rank's block of the dominant eigenvector estimate
/// after `iterations` rounds (each round: SpMM + all-reduce normalisation).
Matrix partitioned_power_iteration(Communicator& comm, const LocalShard& shard,
                                   std::size_t iterations);

}  // namespace trkx
