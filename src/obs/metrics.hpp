#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.hpp"

namespace trkx {

/// Number of per-thread shards each metric keeps. Threads map onto shards
/// by dense thread id modulo this count; recording is a relaxed atomic op
/// on the calling thread's shard, so OpenMP regions and DDP rank threads
/// record without serialising on a shared cache line. Reads merge shards.
inline constexpr std::size_t kMetricShards = 32;

/// Monotonically increasing count (events, calls, bytes). Lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  std::uint64_t value() const;  ///< merged over shards
  const std::string& name() const { return name_; }
  void reset();

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  Cell cells_[kMetricShards];
};

/// Last-written value (loss, learning rate, precision). Lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void reset() { set(0.0); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with per-thread shards: observe() is a handful
/// of relaxed atomic ops on the calling thread's shard; snapshot() merges
/// shards and derives mean / percentile estimates from the buckets.
class Histogram {
 public:
  /// `bounds` are ascending bucket upper edges; an implicit +inf overflow
  /// bucket is appended. Estimated percentiles interpolate within buckets,
  /// so resolution is set by the bucket spacing.
  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::vector<double> bounds;          ///< bucket upper edges (no +inf)
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 counts

    double mean() const;
    /// p in [0,100], interpolated from the bucket counts (clamped to the
    /// observed min/max so estimates never leave the data range).
    double percentile(double p) const;
  };
  Snapshot snapshot() const;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

  /// Log-spaced bounds: `per_decade` edges per factor of 10 from `lo` to
  /// `hi` inclusive. The registry's default timing buckets use
  /// exponential_bounds(1e-6, 1e3, 3) — 1 µs to ~17 min in ~2.15× steps.
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                int per_decade);

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  };
  std::string name_;
  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// Process-wide registry of named metrics. Creation (the first call for a
/// given name) takes a mutex; the returned references are stable for the
/// registry's lifetime, so hot paths can look up once and record forever.
/// reset() zeroes values but never invalidates references.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Default timing buckets (seconds, log-spaced 1µs..1000s).
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Point-in-time value dump of every registered metric, for consumers
  /// that need the data rather than the serialisation (the time-series
  /// snapshotter, tests). Names come out sorted (std::map order).
  struct Dump {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  Dump dump() const;

  /// Flat JSON dump: {"manifest":{...}?,"counters":{...},"gauges":{...},
  /// "histograms":{...}} — histograms carry count/sum/min/max/mean and
  /// p50/p90/p95/p99 estimates. `with_manifest` prepends the RunManifest.
  void write_json(std::ostream& os, bool with_manifest = false) const;
  void write_json(const std::string& path, bool with_manifest = false) const;
  /// CSV flattening: kind,name,count,value,min,max,mean,p50,p90,p95,p99.
  void write_csv(std::ostream& os) const;
  void write_csv(const std::string& path) const;

  void reset();

  /// The process-global registry (leaked on purpose: safe to record into
  /// from any thread at any point of static teardown).
  static MetricsRegistry& global();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TRKX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      TRKX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TRKX_GUARDED_BY(mutex_);
};

/// Shorthand for MetricsRegistry::global().
MetricsRegistry& metrics();

}  // namespace trkx
