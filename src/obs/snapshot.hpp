#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/parallel_guard.hpp"

namespace trkx {

/// Background sampler that turns the point-in-time metrics registry into
/// a time series: every `period_ms` it merges the lock-free registry
/// (counters, gauges, histogram percentiles), refreshes process gauges
/// (RSS / peak RSS / page faults), runs any registered sampler hooks
/// (e.g. TensorPool occupancy, installed by the pipeline layer), derives
/// per-counter rates since the previous tick, and appends one JSONL line:
///
///   {"manifest": {...}}                                  <- first line
///   {"t_ms": 412, "counters": {...}, "gauges": {...},
///    "rates": {"pipeline.filter.events": 83041.2, ...},
///    "histograms": {"epoch.wall_s": {"count":3,"p50":...,"p95":...}}}
///
/// The sampling thread only ever *reads* the registry (relaxed atomic
/// merges), so instrumented hot paths are unaffected; scrape cost is
/// proportional to the number of registered metrics, not to event rate.
class MetricsSnapshotter {
 public:
  struct Options {
    std::string path;       ///< JSONL output file (required)
    int period_ms = 200;    ///< sampling cadence
    bool manifest_header = true;  ///< write the manifest as line 1
  };

  MetricsSnapshotter();
  ~MetricsSnapshotter();  ///< stops and flushes if still running

  /// Open the stream, write the manifest header, start the thread.
  /// No-op (with a warning) if already running.
  void start(const Options& options);
  /// Take one final sample, join the thread, close the stream. If the
  /// sampling thread died on an exception, it is rethrown here (on the
  /// caller's thread) after the stream is closed — the thread entry point
  /// itself never lets one escape (that would be std::terminate).
  void stop();
  bool running() const;

  /// Take one sample synchronously (also what the thread calls). Usable
  /// without start() for deterministic tests via an external stream.
  void sample_to(std::ostream& os);

  /// Number of samples written since start().
  std::uint64_t samples() const;

  /// Register a named hook run before every sample; hooks publish gauges
  /// into the metrics registry (the snapshotter then reads them like any
  /// other metric). Layered subsystems the obs module cannot include
  /// (TensorPool, prefetch queues) bridge in through this. Re-registering
  /// a name replaces the hook.
  void add_sampler(const std::string& name, std::function<void()> fn);

  /// Refresh process.{rss_bytes,peak_rss_bytes,minor_faults,major_faults}
  /// gauges from the OS (no-ops to 0 on unsupported platforms). Called on
  /// every tick; exposed for one-shot dumps and tests.
  static void sample_process_gauges();

  /// Process-global instance driven by ObsExport / TRKX_TIMESERIES.
  static MetricsSnapshotter& global();

  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

 private:
  void run_loop();
  void write_line(std::ostream& os);

  mutable Mutex mutex_;
  CondVar wake_;
  bool running_ TRKX_GUARDED_BY(mutex_) = false;
  bool stop_requested_ TRKX_GUARDED_BY(mutex_) = false;
  Options options_ TRKX_GUARDED_BY(mutex_);
  std::unique_ptr<std::ostream> out_ TRKX_GUARDED_BY(mutex_);
  std::thread thread_;
  std::uint64_t samples_ TRKX_GUARDED_BY(mutex_) = 0;
  std::uint64_t start_ns_ TRKX_GUARDED_BY(mutex_) = 0;
  /// Previous counter values + timestamp for rate derivation.
  std::map<std::string, std::uint64_t> last_counters_
      TRKX_GUARDED_BY(mutex_);
  std::uint64_t last_sample_ns_ TRKX_GUARDED_BY(mutex_) = 0;
  std::map<std::string, std::function<void()>> samplers_
      TRKX_GUARDED_BY(mutex_);
  /// Captures an exception thrown on the sampling thread; stop() rethrows.
  ExceptionBarrier thread_barrier_;
};

}  // namespace trkx
