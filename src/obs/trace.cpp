#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <ostream>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/thread_id.hpp"

namespace trkx {

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}
}  // namespace

struct TraceSession::ThreadBuf {
  int tid = 0;
  mutable Mutex mutex;  ///< one writer (the owning thread) vs readers
  std::vector<TraceEvent> events TRKX_GUARDED_BY(mutex);
};

TraceSession::TraceSession() : epoch_ns_(steady_ns()) {}
TraceSession::~TraceSession() = default;

void TraceSession::start() { enabled_.store(true, std::memory_order_relaxed); }
void TraceSession::stop() { enabled_.store(false, std::memory_order_relaxed); }

void TraceSession::clear() {
  LockGuard lock(mutex_);
  for (auto& buf : bufs_) {
    LockGuard block(buf->mutex);
    buf->events.clear();
  }
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

std::uint64_t TraceSession::now_ns() const {
  return steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

TraceSession::ThreadBuf& TraceSession::local_buf() {
  // One buffer per (session, thread); the pointer is cached thread_local.
  thread_local TraceSession* cached_session = nullptr;
  thread_local ThreadBuf* cached_buf = nullptr;
  if (cached_session != this) {
    auto buf = std::make_unique<ThreadBuf>();
    buf->tid = this_thread_id();
    buf->events.reserve(1024);
    LockGuard lock(mutex_);
    bufs_.push_back(std::move(buf));
    cached_buf = bufs_.back().get();
    cached_session = this;
  }
  return *cached_buf;
}

void TraceSession::record(const char* name, const char* category,
                          std::uint64_t start_ns, std::uint64_t end_ns) {
  ThreadBuf& buf = local_buf();
  LockGuard lock(buf.mutex);
  buf.events.push_back(TraceEvent{name, category, start_ns,
                                  end_ns - start_ns, buf.tid});
}

std::size_t TraceSession::event_count() const {
  LockGuard lock(mutex_);
  std::size_t n = 0;
  for (const auto& buf : bufs_) {
    LockGuard block(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

void TraceSession::write_json(std::ostream& os) const {
  LockGuard lock(mutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buf : bufs_) {
    LockGuard block(buf->mutex);
    for (const TraceEvent& e : buf->events) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
         << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(e.start_ns) / 1e3
         << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3
         << ",\"pid\":1,\"tid\":" << e.tid << "}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"metadata\":{\"manifest\":"
     << RunManifest::collect().to_json() << "}}\n";
}

void TraceSession::write_json(const std::string& path) const {
  std::ofstream os(path);
  TRKX_CHECK_MSG(os.good(), "trace write_json: cannot open " << path);
  write_json(os);
}

TraceSession& TraceSession::global() {
  // Leaked on purpose: spans may close during static teardown.
  static TraceSession* g =
      new TraceSession();  // NOLINT(trkx-naked-new,trkx-hot-alloc): leaked singleton, constructed once
  return *g;
}

TraceSession& trace() { return TraceSession::global(); }

namespace {

/// Env-var driven capture: TRKX_TRACE=<path> starts the global session at
/// load and writes the trace JSON at exit; TRKX_METRICS=<path> dumps the
/// global metrics registry at exit. Lets any binary be traced without code
/// changes (`TRKX_TRACE=trace.json ./bench_fig3_epoch_time`).
struct EnvAutoCapture {
  std::string trace_path;
  std::string metrics_path;
  EnvAutoCapture() {
    // Touch the leaked singletons so they outlive this object.
    TraceSession& session = TraceSession::global();
    MetricsRegistry::global();
    trace_path = env::get_string("TRKX_TRACE");
    if (!trace_path.empty()) session.start();
    metrics_path = env::get_string("TRKX_METRICS");
  }
  ~EnvAutoCapture() {
    // Runs during static teardown: swallow write failures (bad path) —
    // throwing here would turn a finished run into std::terminate.
    try {
      if (!trace_path.empty())
        TraceSession::global().write_json(trace_path);
      if (!metrics_path.empty())
        MetricsRegistry::global().write_json(metrics_path,
                                             /*with_manifest=*/true);
    } catch (const std::exception& e) {
      // Last-resort report during static teardown; the log sink may
      // already be closed. NOLINT(trkx-io)
      std::fprintf(stderr, "trkx: observability dump failed: %s\n", e.what());
    }
  }
};
EnvAutoCapture g_env_auto_capture;

}  // namespace

}  // namespace trkx
