#include "obs/manifest.hpp"

#include <omp.h>

#include <chrono>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <thread>

#include "util/annotations.hpp"
#include "util/env.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

// Build provenance baked in by the top-level CMakeLists; the runtime env
// var TRKX_GIT_SHA overrides the compile-time value so a driver script
// can stamp the exact revision even when the build tree is stale.
#ifndef TRKX_GIT_SHA
#define TRKX_GIT_SHA "unknown"
#endif
#ifndef TRKX_BUILD_TYPE
#define TRKX_BUILD_TYPE "unknown"
#endif
#ifndef TRKX_TRACING
#define TRKX_TRACING 1
#endif

namespace trkx {

namespace {

struct RunContext {
  Mutex mutex;
  std::string tool TRKX_GUARDED_BY(mutex) = "trkx";
  std::uint64_t fingerprint TRKX_GUARDED_BY(mutex) = 0;
};

RunContext& run_context() {
  // Leaked like the metrics registry: manifests may be collected during
  // static teardown of artifact writers.
  static RunContext* ctx = new RunContext();  // NOLINT(trkx-naked-new): leaked singleton
  return *ctx;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string detect_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0')
    return std::string(buf);
#endif
  if (const char* h = std::getenv("HOSTNAME"); h != nullptr && *h != '\0')
    return h;
  return "unknown";
}

}  // namespace

void set_run_tool(const std::string& tool) {
  RunContext& ctx = run_context();
  LockGuard lock(ctx.mutex);
  if (!tool.empty()) ctx.tool = tool;
}

void set_run_fingerprint(std::uint64_t fingerprint) {
  RunContext& ctx = run_context();
  LockGuard lock(ctx.mutex);
  ctx.fingerprint = fingerprint;
}

const std::string& run_tool() {
  RunContext& ctx = run_context();
  LockGuard lock(ctx.mutex);
  return ctx.tool;
}

std::uint64_t run_fingerprint() {
  RunContext& ctx = run_context();
  LockGuard lock(ctx.mutex);
  return ctx.fingerprint;
}

RunManifest RunManifest::collect(const std::string& tool) {
  RunManifest m;
  m.tool = tool.empty() ? run_tool() : tool;
  const std::string sha_env = env::get_string("TRKX_GIT_SHA");
  m.git_sha = !sha_env.empty() ? sha_env : TRKX_GIT_SHA;
  m.build_type = TRKX_BUILD_TYPE;
#ifdef __VERSION__
  m.compiler = __VERSION__;
#else
  m.compiler = "unknown";
#endif
  m.hostname = detect_hostname();
  m.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  m.omp_max_threads = omp_get_max_threads();
  m.tracing_compiled = TRKX_TRACING;
  m.unix_time_s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  m.config_fingerprint = run_fingerprint();
  return m;
}

void RunManifest::write_json(std::ostream& os) const {
  os << "{\"schema\": \"" << json_escape(schema) << "\""
     << ", \"tool\": \"" << json_escape(tool) << "\""
     << ", \"git_sha\": \"" << json_escape(git_sha) << "\""
     << ", \"build_type\": \"" << json_escape(build_type) << "\""
     << ", \"compiler\": \"" << json_escape(compiler) << "\""
     << ", \"hostname\": \"" << json_escape(hostname) << "\""
     << ", \"hardware_threads\": " << hardware_threads
     << ", \"omp_max_threads\": " << omp_max_threads
     << ", \"tracing_compiled\": " << tracing_compiled
     << ", \"unix_time_s\": " << unix_time_s
     << ", \"config_fingerprint\": \"" << std::hex << config_fingerprint
     << std::dec << "\"";
  if (!extra.empty())
    os << ", \"extra\": \"" << json_escape(extra) << "\"";
  os << "}";
}

std::string RunManifest::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace trkx
