#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/manifest.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_id.hpp"

namespace trkx {

namespace {

std::size_t shard_index() {
  return static_cast<std::size_t>(this_thread_id()) % kMetricShards;
}

/// Relaxed fetch-add for atomic<double> via CAS (portable; the hot path is
/// uncontended because each thread owns its shard).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

// ---------- Counter ----------

void Counter::add(std::uint64_t n) {
  cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// ---------- Histogram ----------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  TRKX_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  TRKX_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  for (Shard& s : shards_) {
    s.min.store(std::numeric_limits<double>::infinity());
    s.max.store(-std::numeric_limits<double>::infinity());
    s.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) s.buckets[b].store(0);
  }
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  int per_decade) {
  TRKX_CHECK(lo > 0.0 && hi > lo && per_decade >= 1);
  std::vector<double> bounds;
  const double step = std::pow(10.0, 1.0 / per_decade);
  for (double b = lo; b <= hi * (1.0 + 1e-12); b *= step) bounds.push_back(b);
  return bounds;
}

void Histogram::observe(double v) {
  Shard& s = shards_[shard_index()];
  const std::size_t b = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(s.sum, v);
  atomic_min(s.min, v);
  atomic_max(s.max, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.buckets.assign(bounds_.size() + 1, 0);
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    mn = std::min(mn, s.min.load(std::memory_order_relaxed));
    mx = std::max(mx, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < out.buckets.size(); ++b)
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
  }
  out.min = out.count == 0 ? 0.0 : mn;
  out.max = out.count == 0 ? 0.0 : mx;
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity());
    s.max.store(-std::numeric_limits<double>::infinity());
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
      s.buckets[b].store(0, std::memory_order_relaxed);
  }
}

double Histogram::Snapshot::mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double lo_edge = b == 0 ? min : bounds[b - 1];
    const double hi_edge = b < bounds.size() ? bounds[b] : max;
    const double next = static_cast<double>(seen + buckets[b]);
    if (next >= target) {
      const double frac =
          (target - static_cast<double>(seen)) /
          static_cast<double>(buckets[b]);
      const double est = lo_edge + frac * (hi_edge - lo_edge);
      return std::clamp(est, min, max);
    }
    seen += buckets[b];
  }
  return max;
}

// ---------- MetricsRegistry ----------

Counter& MetricsRegistry::counter(const std::string& name) {
  LockGuard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter(name));  // NOLINT(trkx-naked-new,trkx-hot-alloc): private ctor (friend); first-call registration only
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  LockGuard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge(name));  // NOLINT(trkx-naked-new,trkx-hot-alloc): private ctor (friend); first-call registration only
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, Histogram::exponential_bounds(1e-6, 1e3, 3));
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  LockGuard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot)
    slot.reset(  // NOLINT(trkx-naked-new): private ctor (friend)
        new Histogram(name, std::move(bounds)));
  return *slot;
}

MetricsRegistry::Dump MetricsRegistry::dump() const {
  Dump out;
  LockGuard lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.histograms.emplace_back(name, h->snapshot());
  return out;
}

void MetricsRegistry::write_json(std::ostream& os, bool with_manifest) const {
  LockGuard lock(mutex_);
  os << "{\n";
  if (with_manifest) {
    os << "  \"manifest\": ";
    RunManifest::collect().write_json(os);
    os << ",\n";
  }
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": " << json_number(g->value());
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    os << (first ? "" : ",") << "\n    \"" << name << "\": {"
       << "\"count\": " << s.count << ", \"sum\": " << json_number(s.sum)
       << ", \"min\": " << json_number(s.min)
       << ", \"max\": " << json_number(s.max)
       << ", \"mean\": " << json_number(s.mean())
       << ", \"p50\": " << json_number(s.percentile(50))
       << ", \"p90\": " << json_number(s.percentile(90))
       << ", \"p95\": " << json_number(s.percentile(95))
       << ", \"p99\": " << json_number(s.percentile(99)) << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;  // sparse encoding
      os << (bfirst ? "" : ", ") << "{\"le\": "
         << (b < s.bounds.size() ? json_number(s.bounds[b])
                                 : std::string("\"inf\""))
         << ", \"count\": " << s.buckets[b] << "}";
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::write_json(const std::string& path,
                                 bool with_manifest) const {
  std::ofstream os(path);
  TRKX_CHECK_MSG(os.good(), "metrics write_json: cannot open " << path);
  write_json(os, with_manifest);
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  LockGuard lock(mutex_);
  os << "kind,name,count,value,min,max,mean,p50,p90,p95,p99\n";
  for (const auto& [name, c] : counters_)
    os << "counter," << name << ",," << c->value() << ",,,,,,,\n";
  for (const auto& [name, g] : gauges_)
    os << "gauge," << name << ",," << json_number(g->value()) << ",,,,,,,\n";
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    os << "histogram," << name << "," << s.count << ","
       << json_number(s.sum) << "," << json_number(s.min) << ","
       << json_number(s.max) << "," << json_number(s.mean()) << ","
       << json_number(s.percentile(50)) << "," << json_number(s.percentile(90))
       << "," << json_number(s.percentile(95)) << ","
       << json_number(s.percentile(99)) << "\n";
  }
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream os(path);
  TRKX_CHECK_MSG(os.good(), "metrics write_csv: cannot open " << path);
  write_csv(os);
}

void MetricsRegistry::reset() {
  LockGuard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: threads may record during static teardown.
  static MetricsRegistry* g =
      new MetricsRegistry();  // NOLINT(trkx-naked-new,trkx-hot-alloc): leaked singleton, constructed once
  // Bridge util's fault registry into obs counters. Installed here (not a
  // dedicated TU) because util cannot link obs — the layering runs obs →
  // util — and this TU is referenced by every metrics() user, so the hook
  // is alive before any fault can fire through instrumented code.
  static const bool fault_observer_installed = [] {
    fault::Registry::global().set_observer([](const char* site,
                                              fault::Kind kind) {
      MetricsRegistry& m = MetricsRegistry::global();
      m.counter("fault.injected").add(1);
      m.counter(std::string("fault.injected.") + site).add(1);
      m.counter(std::string("fault.injected.kind.") +
                fault::kind_name(kind)).add(1);
    });
    return true;
  }();
  (void)fault_observer_installed;
  return *g;
}

MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace trkx
