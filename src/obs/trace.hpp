#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.hpp"

// Compile-time gate for span tracing. The build sets TRKX_TRACING=0 (CMake
// option -DTRKX_TRACING=OFF) to compile every TRKX_TRACE_SPAN out entirely;
// the default keeps them compiled in behind a single relaxed atomic load,
// so a binary that never calls TraceSession::start() pays ~nothing.
#ifndef TRKX_TRACING
#define TRKX_TRACING 1
#endif

namespace trkx {

/// One completed span ("ph":"X" in the Chrome trace-event format).
/// `name` must be a string with static storage duration — the macros pass
/// literals; instrumentation that needs dynamic names should intern them.
struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t start_ns;  ///< nanoseconds since the session epoch
  std::uint64_t dur_ns;
  int tid;                 ///< dense thread id (this_thread_id)
};

/// Span recorder with per-thread buffers: record() appends to the calling
/// thread's buffer under that thread's own (uncontended) mutex, so DDP
/// rank threads and OpenMP workers never serialise against each other.
/// Exports Chrome trace-event JSON loadable in chrome://tracing and
/// https://ui.perfetto.dev.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();

  /// Begin recording. Spans opened while the session is stopped are
  /// dropped at open time (a single atomic load).
  void start();
  void stop();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Drop all recorded events (buffers stay registered).
  void clear();

  std::size_t event_count() const;
  /// Nanoseconds since the session epoch (construction or last clear()).
  std::uint64_t now_ns() const;
  void record(const char* name, const char* category, std::uint64_t start_ns,
              std::uint64_t end_ns);

  /// {"traceEvents":[{"name":...,"ph":"X","ts":µs,"dur":µs,"pid":1,
  /// "tid":n,"cat":...},...]} — ts/dur in (fractional) microseconds.
  void write_json(std::ostream& os) const;
  void write_json(const std::string& path) const;

  /// The process-global session driven by TRKX_TRACE_SPAN (leaked on
  /// purpose, like MetricsRegistry::global()).
  static TraceSession& global();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  struct ThreadBuf;
  ThreadBuf& local_buf() TRKX_EXCLUDES(mutex_);
  std::atomic<bool> enabled_{false};
  /// steady_clock origin of ts 0. Atomic: clear() rewrites the epoch while
  /// recording threads may be reading it through now_ns().
  std::atomic<std::uint64_t> epoch_ns_;
  mutable Mutex mutex_;     ///< guards the bufs_ registration list
  std::vector<std::unique_ptr<ThreadBuf>> bufs_ TRKX_GUARDED_BY(mutex_);
};

/// Shorthand for TraceSession::global().
TraceSession& trace();

/// RAII span against the global session. Construction is a relaxed atomic
/// load when tracing is stopped; when running it timestamps the scope and
/// records one complete event on destruction.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* category = "trkx") {
#if TRKX_TRACING
    TraceSession& s = TraceSession::global();
    if (s.enabled()) {
      session_ = &s;
      name_ = name;
      category_ = category;
      start_ns_ = s.now_ns();
    }
#else
    (void)name;
    (void)category;
#endif
  }
  ~TraceScope() {
#if TRKX_TRACING
    if (session_)
      session_->record(name_, category_, start_ns_, session_->now_ns());
#endif
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
#if TRKX_TRACING
  TraceSession* session_ = nullptr;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
#endif
};

namespace detail {
#define TRKX_OBS_CONCAT2(a, b) a##b
#define TRKX_OBS_CONCAT(a, b) TRKX_OBS_CONCAT2(a, b)
}  // namespace detail

#if TRKX_TRACING
/// Trace the enclosing scope as a span named `name` (a string literal).
#define TRKX_TRACE_SPAN(...) \
  ::trkx::TraceScope TRKX_OBS_CONCAT(trkx_trace_scope_, __COUNTER__) { \
    __VA_ARGS__ \
  }
#else
#define TRKX_TRACE_SPAN(...) static_cast<void>(0)
#endif

}  // namespace trkx
