#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace trkx {

/// RAII phase scope that feeds all three observability sinks at once:
///   1. the per-epoch PhaseTimers bucket behind TrainResult (Figure 3),
///   2. a span in the global TraceSession (Perfetto timeline),
///   3. a `phase.<name>_s` histogram in the global MetricsRegistry
///      (percentiles across the run).
/// The successor to ScopedPhase in instrumented code; `name` must be a
/// string literal (it names the trace span and the Figure 3 phase —
/// "sample", "train", "allreduce", "eval").
class PhaseSpan {
 public:
  PhaseSpan(PhaseTimers& timers, const char* name)
      : timers_(&timers), name_(name), scope_(name, "phase") {}
  explicit PhaseSpan(const char* name)
      : timers_(nullptr), name_(name), scope_(name, "phase") {}
  ~PhaseSpan() {
    const double s = timer_.seconds();
    if (timers_) timers_->add(name_, s);
    metrics().histogram(std::string("phase.") + name_ + "_s").observe(s);
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  PhaseTimers* timers_;
  const char* name_;
  TraceScope scope_;
  WallTimer timer_;
};

}  // namespace trkx
