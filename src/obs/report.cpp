#include "obs/report.hpp"

#include <cstdlib>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace trkx {

namespace {
std::string flag_or_env(const ArgParser& args, const std::string& flag,
                        const char* env) {
  std::string v = args.get(flag, "");
  if (v.empty()) {
    if (const char* e = std::getenv(env); e && *e) v = e;
  }
  return v;
}
}  // namespace

ObsExport::ObsExport(const ArgParser& args)
    : trace_path_(flag_or_env(args, "trace-out", "TRKX_TRACE")),
      metrics_path_(flag_or_env(args, "metrics-out", "TRKX_METRICS")) {
  arm();
}

ObsExport::ObsExport(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  arm();
}

void ObsExport::arm() {
  if (!trace_path_.empty()) TraceSession::global().start();
}

void ObsExport::flush() {
  if (flushed_) return;
  flushed_ = true;
  if (!trace_path_.empty()) {
    TraceSession::global().write_json(trace_path_);
    TRKX_INFO << "wrote trace (" << TraceSession::global().event_count()
              << " spans) to " << trace_path_;
  }
  if (!metrics_path_.empty()) {
    MetricsRegistry::global().write_json(metrics_path_);
    TRKX_INFO << "wrote metrics to " << metrics_path_;
  }
}

ObsExport::~ObsExport() {
  // A failed dump (e.g. unwritable path) must not abort the program via a
  // throwing destructor after the run itself succeeded.
  try {
    flush();
  } catch (const std::exception& e) {
    TRKX_ERROR << "observability dump failed: " << e.what();
  }
}

}  // namespace trkx
