#include "obs/report.hpp"

#include <exception>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace trkx {

namespace {
std::string flag_or_env(const ArgParser& args, const std::string& flag,
                        const char* env) {
  std::string v = args.get(flag, "");
  if (v.empty()) v = env::get_string(env);
  return v;
}

int period_flag_or_env(const ArgParser& args) {
  int v = args.get_int("timeseries-period-ms", 0);
  if (v <= 0) v = static_cast<int>(env::get_int("TRKX_TIMESERIES_MS"));
  return v > 0 ? v : 200;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}
}  // namespace

ObsExport::ObsExport(const ArgParser& args)
    : trace_path_(flag_or_env(args, "trace-out", "TRKX_TRACE")),
      metrics_path_(flag_or_env(args, "metrics-out", "TRKX_METRICS")),
      timeseries_path_(
          flag_or_env(args, "timeseries-out", "TRKX_TIMESERIES")),
      timeseries_period_ms_(period_flag_or_env(args)) {
  set_run_tool(basename_of(args.program()));
  arm();
}

ObsExport::ObsExport(std::string trace_path, std::string metrics_path,
                     std::string timeseries_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)),
      timeseries_path_(std::move(timeseries_path)) {
  arm();
}

void ObsExport::arm() {
  if (!trace_path_.empty()) TraceSession::global().start();
  if (!timeseries_path_.empty()) {
    MetricsSnapshotter::global().start(
        {.path = timeseries_path_, .period_ms = timeseries_period_ms_});
  }
}

void ObsExport::flush() {
  if (flushed_) return;
  flushed_ = true;
  if (!timeseries_path_.empty()) {
    MetricsSnapshotter::global().stop();
    TRKX_INFO << "wrote time series to " << timeseries_path_;
  }
  if (!trace_path_.empty()) {
    TraceSession::global().write_json(trace_path_);
    TRKX_INFO << "wrote trace (" << TraceSession::global().event_count()
              << " spans) to " << trace_path_;
  }
  if (!metrics_path_.empty()) {
    MetricsRegistry::global().write_json(metrics_path_,
                                         /*with_manifest=*/true);
    TRKX_INFO << "wrote metrics to " << metrics_path_;
  }
}

ObsExport::~ObsExport() {
  // A failed dump (e.g. unwritable path) must not abort the program via a
  // throwing destructor after the run itself succeeded.
  try {
    flush();
  } catch (const std::exception& e) {
    TRKX_ERROR << "observability dump failed: " << e.what();
  }
}

}  // namespace trkx
