#pragma once

#include <string>

namespace trkx {

class ArgParser;

/// Shared `--trace-out` / `--metrics-out` handling for examples and bench
/// mains. Construction reads the flags (and falls back to the TRKX_TRACE /
/// TRKX_METRICS environment variables) and starts the global TraceSession
/// when a trace is requested; destruction writes the requested files and
/// logs their paths. Near-zero cost when neither flag is given.
///
///   int main(int argc, char** argv) {
///     ArgParser args(argc, argv);
///     ObsExport obs(args);
///     ... run ...
///   }  // trace.json / metrics.json written here
class ObsExport {
 public:
  explicit ObsExport(const ArgParser& args);
  /// Explicit paths (empty = disabled), for callers without an ArgParser.
  ObsExport(std::string trace_path, std::string metrics_path);
  ~ObsExport();

  const std::string& trace_path() const { return trace_path_; }
  const std::string& metrics_path() const { return metrics_path_; }
  bool tracing() const { return !trace_path_.empty(); }

  /// Write any requested files now (also disarms the destructor write).
  void flush();

  ObsExport(const ObsExport&) = delete;
  ObsExport& operator=(const ObsExport&) = delete;

 private:
  void arm();
  std::string trace_path_;
  std::string metrics_path_;
  bool flushed_ = false;
};

}  // namespace trkx
