#pragma once

#include <string>

namespace trkx {

class ArgParser;

/// Shared `--trace-out` / `--metrics-out` / `--timeseries-out` handling
/// for examples and bench mains. Construction reads the flags (with the
/// TRKX_TRACE / TRKX_METRICS / TRKX_TIMESERIES environment variables as
/// fallbacks), registers the binary name as the RunManifest tool, starts
/// the global TraceSession when a trace is requested, and starts the
/// background MetricsSnapshotter (cadence `--timeseries-period-ms`, env
/// TRKX_TIMESERIES_MS, default 200) when a time series is requested;
/// destruction stops the snapshotter and writes the requested files,
/// each stamped with the RunManifest. Near-zero cost when no flag is
/// given.
///
///   int main(int argc, char** argv) {
///     ArgParser args(argc, argv);
///     ObsExport obs(args);
///     ... run ...
///   }  // trace.json / metrics.json / timeseries.jsonl written here
class ObsExport {
 public:
  explicit ObsExport(const ArgParser& args);
  /// Explicit paths (empty = disabled), for callers without an ArgParser.
  ObsExport(std::string trace_path, std::string metrics_path,
            std::string timeseries_path = "");
  ~ObsExport();

  const std::string& trace_path() const { return trace_path_; }
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& timeseries_path() const { return timeseries_path_; }
  bool tracing() const { return !trace_path_.empty(); }

  /// Write any requested files now (also disarms the destructor write).
  void flush();

  ObsExport(const ObsExport&) = delete;
  ObsExport& operator=(const ObsExport&) = delete;

 private:
  void arm();
  std::string trace_path_;
  std::string metrics_path_;
  std::string timeseries_path_;
  int timeseries_period_ms_ = 200;
  bool flushed_ = false;
};

}  // namespace trkx
