#include "obs/snapshot.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace trkx {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Current resident set in bytes from /proc/self/status (Linux); 0 when
/// unavailable.
std::uint64_t read_vm_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmRSS:") {
      std::uint64_t kb = 0;
      status >> kb;
      return kb * 1024;
    }
    status.ignore(4096, '\n');
  }
#endif
  return 0;
}

}  // namespace

void MetricsSnapshotter::sample_process_gauges() {
  MetricsRegistry& m = metrics();
  m.gauge("process.rss_bytes")
      .set(static_cast<double>(read_vm_rss_bytes()));
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru = {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
    const double peak = static_cast<double>(ru.ru_maxrss);
#else
    const double peak = static_cast<double>(ru.ru_maxrss) * 1024.0;
#endif
    m.gauge("process.peak_rss_bytes").set(peak);
    m.gauge("process.minor_faults")
        .set(static_cast<double>(ru.ru_minflt));
    m.gauge("process.major_faults")
        .set(static_cast<double>(ru.ru_majflt));
  }
#endif
}

MetricsSnapshotter::MetricsSnapshotter() = default;

MetricsSnapshotter::~MetricsSnapshotter() {
  // Never throw out of a destructor (mirrors ObsExport).
  try {
    stop();
  } catch (const std::exception& e) {
    TRKX_ERROR << "metrics snapshotter shutdown failed: " << e.what();
  }
}

bool MetricsSnapshotter::running() const {
  LockGuard lock(mutex_);
  return running_;
}

std::uint64_t MetricsSnapshotter::samples() const {
  LockGuard lock(mutex_);
  return samples_;
}

void MetricsSnapshotter::add_sampler(const std::string& name,
                                     std::function<void()> fn) {
  LockGuard lock(mutex_);
  samplers_[name] = std::move(fn);
}

void MetricsSnapshotter::start(const Options& options) {
  TRKX_CHECK_MSG(!options.path.empty(),
                 "metrics snapshotter needs an output path");
  if (running()) {
    // Early out before the open below truncates the live output file.
    TRKX_WARN << "metrics snapshotter already running; start() ignored";
    return;
  }
  // Open the stream and write the header before taking the lock: file
  // I/O (and the log warning below) must not happen while mutex_ is held.
  auto os = std::make_unique<std::ofstream>(options.path);
  TRKX_CHECK_MSG(os->good(),
                 "metrics snapshotter: cannot open " << options.path);
  if (options.manifest_header) {
    *os << "{\"manifest\": " << RunManifest::collect().to_json() << "}\n";
  }
  bool already_running = false;
  {
    UniqueLock lock(mutex_);
    if (running_) {
      already_running = true;
    } else {
      options_ = options;
      out_ = std::move(os);
      running_ = true;
      stop_requested_ = false;
      samples_ = 0;
      start_ns_ = steady_ns();
      last_sample_ns_ = 0;
      last_counters_.clear();
    }
  }
  if (already_running) {
    TRKX_WARN << "metrics snapshotter already running; start() ignored";
    return;
  }
  thread_ = std::thread([this] { run_loop(); });
}

void MetricsSnapshotter::stop() {
  {
    UniqueLock lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::ostream* os = nullptr;
  {
    UniqueLock lock(mutex_);
    os = out_.get();
  }
  // Final sample so short runs always leave at least one data line —
  // unless the sampling thread already died, in which case another
  // write would likely hit the same failure.
  if (os != nullptr && !thread_barrier_.cancelled()) write_line(*os);
  std::string path;
  std::uint64_t n = 0;
  {
    UniqueLock lock(mutex_);
    out_.reset();
    running_ = false;
    path = options_.path;
    n = samples_;
  }
  TRKX_INFO << "wrote " << n << " time-series samples to " << path;
  // Surface a sampling-thread death to the caller now that state is
  // consistent; the thread entry itself must never throw.
  thread_barrier_.rethrow();
}

void MetricsSnapshotter::run_loop() {
  // Thread entry point: an escaping exception would be std::terminate.
  // Capture into the barrier instead; stop() rethrows on its caller.
  thread_barrier_.run([this] {
    while (true) {
      std::ostream* os = nullptr;
      int period_ms = 200;
      {
        UniqueLock lock(mutex_);
        if (stop_requested_) return;
        period_ms = options_.period_ms > 0 ? options_.period_ms : 200;
        os = out_.get();
      }
      if (os != nullptr) write_line(*os);
      UniqueLock lock(mutex_);
      if (stop_requested_) return;
      wake_.wait_for(lock, std::chrono::milliseconds(period_ms));
    }
  });
}

void MetricsSnapshotter::sample_to(std::ostream& os) { write_line(os); }

void MetricsSnapshotter::write_line(std::ostream& os) {
  // Run bridge hooks outside the lock: a hook may (re)register samplers
  // or touch the registry, and must not deadlock against this object.
  std::vector<std::function<void()>> hooks;
  {
    LockGuard lock(mutex_);
    hooks.reserve(samplers_.size());
    for (const auto& [name, fn] : samplers_) hooks.push_back(fn);
  }
  for (const auto& fn : hooks) fn();
  sample_process_gauges();

  const MetricsRegistry::Dump dump = metrics().dump();
  const std::uint64_t now = steady_ns();

  // Format the whole line into a local buffer under the lock, then write
  // it out after releasing: `os` is a file stream, and blocking on disk
  // while holding mutex_ would stall running()/samples()/add_sampler().
  std::ostringstream line;
  {
    LockGuard lock(mutex_);
    if (start_ns_ == 0) start_ns_ = now;  // standalone sample_to() use
    const double t_ms =
        static_cast<double>(now - start_ns_) / 1e6;
    const double dt_s =
        last_sample_ns_ == 0
            ? 0.0
            : static_cast<double>(now - last_sample_ns_) / 1e9;

    line << "{\"t_ms\": " << json_number(t_ms) << ", \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : dump.counters) {
      line << (first ? "" : ", ") << "\"" << name << "\": " << v;
      first = false;
    }
    line << "}, \"gauges\": {";
    first = true;
    for (const auto& [name, v] : dump.gauges) {
      line << (first ? "" : ", ") << "\"" << name
           << "\": " << json_number(v);
      first = false;
    }
    // Per-counter rates since the previous tick: this is where cumulative
    // stage counters (pipeline.<stage>.events) become events/sec curves.
    line << "}, \"rates\": {";
    first = true;
    for (const auto& [name, v] : dump.counters) {
      const auto it = last_counters_.find(name);
      if (it == last_counters_.end() || dt_s <= 0.0 || v < it->second)
        continue;
      const double rate = static_cast<double>(v - it->second) / dt_s;
      line << (first ? "" : ", ") << "\"" << name << "\": "
           << json_number(rate);
      first = false;
    }
    line << "}, \"histograms\": {";
    first = true;
    for (const auto& [name, s] : dump.histograms) {
      line << (first ? "" : ", ") << "\"" << name << "\": {\"count\": "
           << s.count << ", \"sum\": " << json_number(s.sum)
           << ", \"p50\": " << json_number(s.percentile(50))
           << ", \"p95\": " << json_number(s.percentile(95))
           << ", \"p99\": " << json_number(s.percentile(99)) << "}";
      first = false;
    }
    line << "}}\n";

    last_counters_.clear();
    for (const auto& [name, v] : dump.counters) last_counters_[name] = v;
    last_sample_ns_ = now;
    ++samples_;
  }
  os << line.str();
  os.flush();
}

MetricsSnapshotter& MetricsSnapshotter::global() {
  // Leaked on purpose, like MetricsRegistry::global().
  static MetricsSnapshotter* g =
      new MetricsSnapshotter();  // NOLINT(trkx-naked-new,trkx-hot-alloc): leaked singleton, constructed once
  return *g;
}

}  // namespace trkx
