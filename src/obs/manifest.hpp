#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace trkx {

/// Provenance stamp for every performance artifact this process emits.
///
/// A RunManifest answers "what exactly produced this number?": the git
/// revision and build configuration the binary was compiled from, the
/// hardware and threading environment it ran on, and the run
/// configuration fingerprint (the same hash checkpoint resume validates
/// against, see checkpoint_fingerprint). The flight recorder embeds it in
///
///   * the metrics JSON dump            ("manifest": {...})
///   * the Chrome trace export          ("metadata": {"manifest": {...}})
///   * the time-series JSONL stream     (first line)
///   * every bench JSON artifact        (schema trkx-bench-v2)
///
/// so any two numbers in the perf trajectory can be compared knowing
/// whether code, config, or machine changed between them.
struct RunManifest {
  std::string schema = "trkx-manifest-v1";
  std::string tool;        ///< binary / bench name (argv[0] basename)
  std::string git_sha;     ///< TRKX_GIT_SHA env override > compile-time
  std::string build_type;  ///< CMAKE_BUILD_TYPE baked in at compile time
  std::string compiler;    ///< __VERSION__ of the building compiler
  std::string hostname;
  int hardware_threads = 0;  ///< std::thread::hardware_concurrency
  int omp_max_threads = 0;   ///< omp_get_max_threads at collect time
  int tracing_compiled = 0;  ///< TRKX_TRACING gate state of this binary
  std::uint64_t unix_time_s = 0;          ///< collection wall-clock time
  std::uint64_t config_fingerprint = 0;   ///< 0 = not applicable
  std::string extra;  ///< free-form "key=value,..." context (optional)

  /// Snapshot the environment now. `tool` defaults from the last
  /// set_run_tool() call (or "trkx" when unset).
  static RunManifest collect(const std::string& tool = "");

  /// Serialise as a JSON object (no trailing newline).
  void write_json(std::ostream& os) const;
  std::string to_json() const;
};

/// Process-global manifest context: the tool name and config fingerprint
/// that RunManifest::collect() picks up. Set once near main() (ObsExport
/// does the tool name automatically); fingerprint is stamped by training
/// entry points that know their GnnTrainConfig.
void set_run_tool(const std::string& tool);
void set_run_fingerprint(std::uint64_t fingerprint);
const std::string& run_tool();
std::uint64_t run_fingerprint();

}  // namespace trkx
