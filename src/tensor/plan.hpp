#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace trkx {

/// Tape-level static memory planner.
///
/// The autograd tape allocates the same sequence of buffers every
/// training step as long as the minibatch shapes repeat (full-graph
/// training always repeats; ShaDow minibatches repeat whenever two draws
/// produce equal shapes). MemoryPlanner exploits that: the first step
/// under a given shape signature *records* the in-scope TensorPool
/// acquire/release sequence, computes per-buffer liveness intervals from
/// it, assigns every non-escaping buffer an offset in one arena via
/// first-fit interval allocation, and then *replays* that plan on every
/// later step with the same signature — each tape allocation becomes a
/// cursor bump into a pre-sized arena instead of a pool-bucket round
/// trip.
///
/// Replay is verified, not assumed: every acquire/release must match the
/// recorded event stream (same order, same sizes). On the first
/// mismatch the plan is declared dead, the rest of the step falls back
/// to TensorPool, the cached plan is invalidated (stats().replans++),
/// and outstanding arena pointers are drained through a global arena
/// registry so releases of planner memory are never routed to the
/// system allocator. Buffers that outlive the scope during recording
/// (escapes — e.g. parameters bound into the tape) are planned as
/// pool-served and never enter the arena.
///
/// Everything is per-thread (the trainer thread owns its plans); the
/// arena registry and the stats gauges are the only global state.
/// Disable with TRKX_MEM_PLAN=0 or set_enabled(false).
class MemoryPlanner {
 public:
  /// RAII planning scope. Constructing with a shape signature either
  /// starts recording (first time this signature is seen) or replaying
  /// (plan cached). Nested scopes are inert. Destruction finalises the
  /// recording into a plan, or retires/validates the replay.
  class Scope {
   public:
    explicit Scope(std::uint64_t signature);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    bool active_ = false;
  };

  /// FNV-1a over the step's shape-defining dimensions.
  static std::uint64_t fingerprint(std::initializer_list<std::uint64_t> dims);

  static bool enabled();
  static void set_enabled(bool on);

  struct Stats {
    std::uint64_t arena_bytes = 0;   ///< bytes held by live plan arenas
    std::uint64_t plan_reuses = 0;   ///< steps served start-to-end by a plan
    std::uint64_t replans = 0;       ///< plans invalidated by divergence
  };
  static Stats stats();
  static void reset_stats();

  /// Drop this thread's cached plans and free their arenas (those with
  /// no outstanding pointers). Test/teardown hook.
  static void clear_thread_plans();
};

namespace plan_detail {

/// TensorPool::acquire hook: non-null when a replaying plan serves the
/// allocation from its arena. Must be called before the pool looks at
/// its free lists.
void* plan_acquire(std::size_t bytes);

/// TensorPool::acquire tail hook: records the pool-served pointer while
/// a scope is recording. No-op otherwise.
void plan_record(void* p, std::size_t bytes);

/// TensorPool::release hook: true when the pointer belonged to a plan
/// arena (replay bookkeeping or post-divergence drain) and the pool must
/// not touch it. While recording, logs the event and returns false so
/// the pool still processes the release.
bool plan_release(void* p, std::size_t bytes);

}  // namespace plan_detail
}  // namespace trkx
