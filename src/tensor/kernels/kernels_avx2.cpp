// AVX2+FMA instantiation of the kernel bodies. This translation unit is
// the only one compiled with -mavx2 -mfma (see src/tensor/CMakeLists.txt);
// it is always linked, and the dispatch table guards execution, so the
// binary runs on any x86-64 host. -ffp-contract=off keeps the compiler
// from FMA-contracting the scalar tail loops and the kernels documented
// as bit-identical — FMA enters only through explicit _mm256_fmadd_ps.

#define TRKX_KERNELS_AVX2 1
#define TRKX_KERNELS_NS avx2_impl
#define TRKX_KERNELS_NAME "avx2"
#include "tensor/kernels/kernels_body.hpp"

namespace trkx {
namespace kernels {

const KernelTable& avx2_table() { return avx2_impl::table(); }

}  // namespace kernels
}  // namespace trkx
