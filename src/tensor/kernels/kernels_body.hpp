#pragma once

// Shared kernel bodies, compiled once per ISA. Each translation unit
// defines the parameter macros before including this header:
//
//   TRKX_KERNELS_NS    namespace for this ISA's symbols (scalar_impl, ...)
//   TRKX_KERNELS_AVX2  1 to emit AVX2+FMA intrinsic paths, 0 for scalar
//   TRKX_KERNELS_NAME  display name stored in the KernelTable
//
// The AVX2 TU is compiled with -mavx2 -mfma -ffp-contract=off: FMA enters
// only through explicit _mm256_fmadd_ps, so the scalar tail loops and the
// kernels documented as bit-identical (see kernels.hpp) never get
// auto-contracted away from the scalar reference's mul-then-add rounding.
//
// The scalar bodies reproduce the historical loops from ops.cpp /
// tape.cpp / optimizer.cpp token for token (loop order, k-tiling,
// zero-skips, accumulator widths), so dispatching to the scalar table is
// numerically invisible.

#ifndef TRKX_KERNELS_NS
// Standalone-header compilation (scripts/check_static.sh) only; real TUs
// always define the macros first.
#define TRKX_KERNELS_NS standalone_impl
#define TRKX_KERNELS_AVX2 0
#define TRKX_KERNELS_NAME "standalone"
#endif

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tensor/kernels/kernels.hpp"
#include "util/error.hpp"

#if TRKX_KERNELS_AVX2
#include <immintrin.h>
#endif

namespace trkx {
namespace kernels {
namespace TRKX_KERNELS_NS {

/// Micro-kernel tile size for the k-loop blocking in gemm (one tile of B
/// rows stays in L1; hidden dims here are ≤ 256 so simple blocking wins).
constexpr std::size_t kTile = 64;
/// Per-task elementwise chunk: large enough to amortise OpenMP dispatch,
/// small enough to split pipeline-sized vectors across cores.
constexpr std::size_t kEwBlock = 8192;

#if TRKX_KERNELS_AVX2
/// Horizontal sum of one 8-lane register (reassociated: ULP territory).
inline float hsum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 sh = _mm_movehl_ps(lo, lo);
  lo = _mm_add_ps(lo, sh);
  sh = _mm_movehdup_ps(lo);
  lo = _mm_add_ss(lo, sh);
  return _mm_cvtss_f32(lo);
}
#endif

// ---------------------------------------------------------------------
// Row primitives. Each has one AVX2 and one scalar body; OpenMP lives in
// the kernel wrappers below, never here.
// ---------------------------------------------------------------------

/// c[0..n) += a * b[0..n). FMA in the AVX2 lanes (GEMM/SpMM family is
/// ULP-bounded, not bit-identical); the tail is plain mul-then-add.
inline void mac_row(float* c, const float* b, float a, std::size_t n) {
#if TRKX_KERNELS_AVX2
  const __m256 va = _mm256_set1_ps(a);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256 c0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b + j),
                                      _mm256_loadu_ps(c + j));
    const __m256 c1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b + j + 8),
                                      _mm256_loadu_ps(c + j + 8));
    _mm256_storeu_ps(c + j, c0);
    _mm256_storeu_ps(c + j + 8, c1);
  }
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(c + j, _mm256_fmadd_ps(va, _mm256_loadu_ps(b + j),
                                            _mm256_loadu_ps(c + j)));
  }
  for (; j < n; ++j) c[j] += a * b[j];
#else
  for (std::size_t j = 0; j < n; ++j) c[j] += a * b[j];
#endif
}

/// Dot product of two contiguous rows (reassociated in the AVX2 build).
inline float dot_row(const float* a, const float* b, std::size_t n) {
#if TRKX_KERNELS_AVX2
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                           _mm256_loadu_ps(b + j + 8), acc1);
  }
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
  }
  float acc = hsum8(_mm256_add_ps(acc0, acc1));
  for (; j < n; ++j) acc += a[j] * b[j];
  return acc;
#else
  float acc = 0.0f;
  for (std::size_t j = 0; j < n; ++j) acc += a[j] * b[j];
  return acc;
#endif
}

/// Sum of one row (reassociated in the AVX2 build).
inline float sum_row(const float* a, std::size_t n) {
#if TRKX_KERNELS_AVX2
  __m256 acc8 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc8 = _mm256_add_ps(acc8, _mm256_loadu_ps(a + j));
  }
  float acc = hsum8(acc8);
  for (; j < n; ++j) acc += a[j];
  return acc;
#else
  float acc = 0.0f;
  for (std::size_t j = 0; j < n; ++j) acc += a[j];
  return acc;
#endif
}

/// Sum of (a[j] - m)^2 over one row (reassociated in the AVX2 build).
inline float sum_sq_diff(const float* a, float m, std::size_t n) {
#if TRKX_KERNELS_AVX2
  const __m256 vm = _mm256_set1_ps(m);
  __m256 acc8 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + j), vm);
    acc8 = _mm256_fmadd_ps(d, d, acc8);
  }
  float acc = hsum8(acc8);
  for (; j < n; ++j) acc += (a[j] - m) * (a[j] - m);
  return acc;
#else
  float acc = 0.0f;
  for (std::size_t j = 0; j < n; ++j) acc += (a[j] - m) * (a[j] - m);
  return acc;
#endif
}

/// o = a + b (elementwise, exact: identical rounding on both ISAs).
inline void vadd(const float* a, const float* b, float* o, std::size_t n) {
#if TRKX_KERNELS_AVX2
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(o + j, _mm256_add_ps(_mm256_loadu_ps(a + j),
                                          _mm256_loadu_ps(b + j)));
  }
  for (; j < n; ++j) o[j] = a[j] + b[j];
#else
  for (std::size_t j = 0; j < n; ++j) o[j] = a[j] + b[j];
#endif
}

/// o = a - b (exact).
inline void vsub(const float* a, const float* b, float* o, std::size_t n) {
#if TRKX_KERNELS_AVX2
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(o + j, _mm256_sub_ps(_mm256_loadu_ps(a + j),
                                          _mm256_loadu_ps(b + j)));
  }
  for (; j < n; ++j) o[j] = a[j] - b[j];
#else
  for (std::size_t j = 0; j < n; ++j) o[j] = a[j] - b[j];
#endif
}

/// o = a * b (exact).
inline void vmul(const float* a, const float* b, float* o, std::size_t n) {
#if TRKX_KERNELS_AVX2
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(o + j, _mm256_mul_ps(_mm256_loadu_ps(a + j),
                                          _mm256_loadu_ps(b + j)));
  }
  for (; j < n; ++j) o[j] = a[j] * b[j];
#else
  for (std::size_t j = 0; j < n; ++j) o[j] = a[j] * b[j];
#endif
}

/// o = a * s (exact).
inline void vscale(const float* a, float s, float* o, std::size_t n) {
#if TRKX_KERNELS_AVX2
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(o + j, _mm256_mul_ps(_mm256_loadu_ps(a + j), vs));
  }
  for (; j < n; ++j) o[j] = a[j] * s;
#else
  for (std::size_t j = 0; j < n; ++j) o[j] = a[j] * s;
#endif
}

/// a += b (exact).
inline void vadd_inplace(float* a, const float* b, std::size_t n) {
#if TRKX_KERNELS_AVX2
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(a + j, _mm256_add_ps(_mm256_loadu_ps(a + j),
                                          _mm256_loadu_ps(b + j)));
  }
  for (; j < n; ++j) a[j] += b[j];
#else
  for (std::size_t j = 0; j < n; ++j) a[j] += b[j];
#endif
}

/// a += s * b. Deliberately mul-then-add (no FMA) so the result stays
/// bit-identical to the scalar reference — gradient accumulation feeds
/// the bit-identical-resume checkpoint guarantee.
inline void vaxpy(float* a, float s, const float* b, std::size_t n) {
#if TRKX_KERNELS_AVX2
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 prod = _mm256_mul_ps(vs, _mm256_loadu_ps(b + j));
    _mm256_storeu_ps(a + j, _mm256_add_ps(_mm256_loadu_ps(a + j), prod));
  }
  for (; j < n; ++j) a[j] += s * b[j];
#else
  for (std::size_t j = 0; j < n; ++j) a[j] += s * b[j];
#endif
}

/// o = a * g + b (exact: mul then add, no FMA — the layer-norm affine).
inline void vmuladd3(const float* a, const float* g, const float* b, float* o,
                     std::size_t n) {
#if TRKX_KERNELS_AVX2
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(a + j),
                                      _mm256_loadu_ps(g + j));
    _mm256_storeu_ps(o + j, _mm256_add_ps(prod, _mm256_loadu_ps(b + j)));
  }
  for (; j < n; ++j) o[j] = a[j] * g[j] + b[j];
#else
  for (std::size_t j = 0; j < n; ++j) o[j] = a[j] * g[j] + b[j];
#endif
}

/// o = (a - m) * s (exact — the layer-norm normalisation).
inline void vsubmul(const float* a, float m, float s, float* o,
                    std::size_t n) {
#if TRKX_KERNELS_AVX2
  const __m256 vm = _mm256_set1_ps(m);
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(
        o + j, _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(a + j), vm), vs));
  }
  for (; j < n; ++j) o[j] = (a[j] - m) * s;
#else
  for (std::size_t j = 0; j < n; ++j) o[j] = (a[j] - m) * s;
#endif
}

/// One layer-norm backward row: dx = is * (dy*g - inv_cols*sum(dy*g)
/// - xhat * inv_cols * sum(dy*g*xhat)), matching the historical scalar
/// expression's association exactly in the tails.
inline void lnorm_bwd_row(const float* dyr, const float* g, const float* xh,
                          float is, float inv_cols, float* dxr,
                          std::size_t n) {
#if TRKX_KERNELS_AVX2
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 dyg = _mm256_mul_ps(_mm256_loadu_ps(dyr + j),
                                     _mm256_loadu_ps(g + j));
    acc1 = _mm256_add_ps(acc1, dyg);
    acc2 = _mm256_fmadd_ps(dyg, _mm256_loadu_ps(xh + j), acc2);
  }
  float sum_dyg = hsum8(acc1);
  float sum_dyg_xhat = hsum8(acc2);
  for (; j < n; ++j) {
    const float dyg = dyr[j] * g[j];
    sum_dyg += dyg;
    sum_dyg_xhat += dyg * xh[j];
  }
  const float b = inv_cols * sum_dyg;
  const __m256 vb = _mm256_set1_ps(b);
  const __m256 vic = _mm256_set1_ps(inv_cols);
  const __m256 vs2 = _mm256_set1_ps(sum_dyg_xhat);
  const __m256 vis = _mm256_set1_ps(is);
  for (j = 0; j + 8 <= n; j += 8) {
    const __m256 dyg = _mm256_mul_ps(_mm256_loadu_ps(dyr + j),
                                     _mm256_loadu_ps(g + j));
    const __m256 c =
        _mm256_mul_ps(_mm256_mul_ps(_mm256_loadu_ps(xh + j), vic), vs2);
    _mm256_storeu_ps(
        dxr + j,
        _mm256_mul_ps(_mm256_sub_ps(_mm256_sub_ps(dyg, vb), c), vis));
  }
  for (; j < n; ++j) {
    const float dyg = dyr[j] * g[j];
    dxr[j] = is * (dyg - b - xh[j] * inv_cols * sum_dyg_xhat);
  }
#else
  float sum_dyg = 0.0f, sum_dyg_xhat = 0.0f;
  for (std::size_t j = 0; j < n; ++j) {
    const float dyg = dyr[j] * g[j];
    sum_dyg += dyg;
    sum_dyg_xhat += dyg * xh[j];
  }
  for (std::size_t j = 0; j < n; ++j) {
    const float dyg = dyr[j] * g[j];
    dxr[j] = is * (dyg - inv_cols * sum_dyg -
                   xh[j] * inv_cols * sum_dyg_xhat);
  }
#endif
}

/// One Adam block. Every operation is elementwise and correctly rounded
/// (mul/add/sqrt/div), applied in the exact order of the historical
/// scalar loop — so the AVX2 path is bit-identical to scalar and the
/// optimizer-state checkpoints stay bit-exact across dispatch modes.
inline void adam_block(float* w, const float* g, float* m, float* v,
                       std::size_t n, float lr, float b1, float b2, float eps,
                       float wd, float ib1, float ib2) {
#if TRKX_KERNELS_AVX2
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vb1 = _mm256_set1_ps(b1);
  const __m256 vb2 = _mm256_set1_ps(b2);
  const __m256 vb1c = _mm256_set1_ps(1.0f - b1);
  const __m256 vb2c = _mm256_set1_ps(1.0f - b2);
  const __m256 veps = _mm256_set1_ps(eps);
  const __m256 vwd = _mm256_set1_ps(wd);
  const __m256 vib1 = _mm256_set1_ps(ib1);
  const __m256 vib2 = _mm256_set1_ps(ib2);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 vw = _mm256_loadu_ps(w + j);
    const __m256 vg = _mm256_loadu_ps(g + j);
    const __m256 grad = _mm256_add_ps(vg, _mm256_mul_ps(vwd, vw));
    const __m256 vm = _mm256_add_ps(_mm256_mul_ps(vb1, _mm256_loadu_ps(m + j)),
                                    _mm256_mul_ps(vb1c, grad));
    const __m256 vv = _mm256_add_ps(
        _mm256_mul_ps(vb2, _mm256_loadu_ps(v + j)),
        _mm256_mul_ps(_mm256_mul_ps(vb2c, grad), grad));
    _mm256_storeu_ps(m + j, vm);
    _mm256_storeu_ps(v + j, vv);
    const __m256 mhat = _mm256_mul_ps(vm, vib1);
    const __m256 vhat = _mm256_mul_ps(vv, vib2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    vw = _mm256_sub_ps(vw, _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom));
    _mm256_storeu_ps(w + j, vw);
  }
  for (; j < n; ++j) {
    const float grad = g[j] + wd * w[j];
    m[j] = b1 * m[j] + (1.0f - b1) * grad;
    v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
    const float mhat = m[j] * ib1;
    const float vhat = v[j] * ib2;
    w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
#else
  for (std::size_t j = 0; j < n; ++j) {
    const float grad = g[j] + wd * w[j];
    m[j] = b1 * m[j] + (1.0f - b1) * grad;
    v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
    const float mhat = m[j] * ib1;
    const float vhat = v[j] * ib2;
    w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
#endif
}

// ---------------------------------------------------------------------
// KernelTable entry points: shape loops + OpenMP, primitives per row.
// ---------------------------------------------------------------------

inline void gemm(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) {
  // i-k-j order with k-tiling and zero-skip, as the historical matmul.
#pragma omp parallel for schedule(static) default(none) shared(a, b, c) \
    firstprivate(m, k, n)
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
      const std::size_t k1 = std::min(k0 + kTile, k);
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const float aik = a[i * k + kk];
        if (aik == 0.0f) continue;
        mac_row(c + i * n, b + kk * n, aik, n);
      }
    }
  }
}

inline void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, b, c) \
    firstprivate(m, k, n)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = dot_row(arow, b + j * k, k);
  }
}

inline void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, b, c) \
    firstprivate(m, k, n)
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aki = a[kk * m + i];
      if (aki == 0.0f) continue;
      mac_row(c + i * n, b + kk * n, aki, n);
    }
  }
}

inline void spmm(const std::uint64_t* row_ptr, const std::uint32_t* col_idx,
                 const float* val, const float* x, float* y, std::size_t rows,
                 std::size_t f) {
#pragma omp parallel for schedule(dynamic, 64) default(none) \
    shared(row_ptr, col_idx, val, x, y) firstprivate(rows, f)
  for (std::size_t i = 0; i < rows; ++i) {
    float* yrow = y + i * f;
    for (std::uint64_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk) {
      mac_row(yrow, x + col_idx[kk] * f, val[kk], f);
    }
  }
}

inline void row_gather(const float* x, const std::uint32_t* idx, float* out,
                       std::size_t n_idx, std::size_t cols) {
#pragma omp parallel for schedule(static) default(none) shared(x, idx, out) \
    firstprivate(n_idx, cols)
  for (std::size_t i = 0; i < n_idx; ++i) {
    std::memcpy(out + i * cols, x + idx[i] * cols, cols * sizeof(float));
  }
}

inline void row_scatter_add(float* dst, const std::uint32_t* idx,
                            const float* src, std::size_t n_rows,
                            std::size_t cols) {
  // Serial over src rows: scatter targets collide, and the graphs here
  // have high-degree vertices, so per-row atomics would be slower.
  for (std::size_t i = 0; i < n_rows; ++i) {
    vadd_inplace(dst + idx[i] * cols, src + i * cols, cols);
  }
}

inline void ew_add(const float* a, const float* b, float* o, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, b, o) \
    firstprivate(n)
  for (std::size_t i0 = 0; i0 < n; i0 += kEwBlock) {
    vadd(a + i0, b + i0, o + i0, std::min(std::size_t{kEwBlock}, n - i0));
  }
}

inline void ew_sub(const float* a, const float* b, float* o, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, b, o) \
    firstprivate(n)
  for (std::size_t i0 = 0; i0 < n; i0 += kEwBlock) {
    vsub(a + i0, b + i0, o + i0, std::min(std::size_t{kEwBlock}, n - i0));
  }
}

inline void ew_mul(const float* a, const float* b, float* o, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, b, o) \
    firstprivate(n)
  for (std::size_t i0 = 0; i0 < n; i0 += kEwBlock) {
    vmul(a + i0, b + i0, o + i0, std::min(std::size_t{kEwBlock}, n - i0));
  }
}

inline void ew_scale(const float* a, float s, float* o, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, o) \
    firstprivate(n, s)
  for (std::size_t i0 = 0; i0 < n; i0 += kEwBlock) {
    vscale(a + i0, s, o + i0, std::min(std::size_t{kEwBlock}, n - i0));
  }
}

inline void ew_add_inplace(float* a, const float* b, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, b) \
    firstprivate(n)
  for (std::size_t i0 = 0; i0 < n; i0 += kEwBlock) {
    vadd_inplace(a + i0, b + i0, std::min(std::size_t{kEwBlock}, n - i0));
  }
}

inline void ew_axpy(float* a, float s, const float* b, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, b) \
    firstprivate(n, s)
  for (std::size_t i0 = 0; i0 < n; i0 += kEwBlock) {
    vaxpy(a + i0, s, b + i0, std::min(std::size_t{kEwBlock}, n - i0));
  }
}

inline void colwise_sum(const float* a, float* o, std::size_t rows,
                        std::size_t cols) {
  // Serial in row order, vectorized across columns: per-column
  // accumulation order matches the historical scalar loop exactly.
  for (std::size_t i = 0; i < rows; ++i) {
    vadd_inplace(o, a + i * cols, cols);
  }
}

inline void rowwise_sum(const float* a, float* o, std::size_t rows,
                        std::size_t cols) {
#pragma omp parallel for schedule(static) default(none) shared(a, o) \
    firstprivate(rows, cols)
  for (std::size_t i = 0; i < rows; ++i) {
    o[i] = sum_row(a + i * cols, cols);
  }
}

inline void layer_norm_fwd(const float* x, const float* gamma,
                           const float* beta, float* y, float* xhat,
                           float* inv_std, std::size_t rows, std::size_t cols,
                           float eps) {
  TRKX_CHECK(cols > 0);
#pragma omp parallel for schedule(static) default(none) \
    shared(x, gamma, beta, y, xhat, inv_std) firstprivate(rows, cols, eps)
  for (std::size_t i = 0; i < rows; ++i) {
    const float* xr = x + i * cols;
    float m = sum_row(xr, cols);
    m /= static_cast<float>(cols);  // NOLINT(trkx-div-guard): cols > 0 checked at entry
    float var = sum_sq_diff(xr, m, cols);
    var /= static_cast<float>(cols);  // NOLINT(trkx-div-guard): cols > 0 checked at entry
    const float is = 1.0f / std::sqrt(var + eps);
    inv_std[i] = is;
    float* nr = xhat + i * cols;
    vsubmul(xr, m, is, nr, cols);
    vmuladd3(nr, gamma, beta, y + i * cols, cols);
  }
}

inline void layer_norm_bwd_dx(const float* dy, const float* gamma,
                              const float* xhat, const float* inv_std,
                              float* dx, std::size_t rows, std::size_t cols) {
  TRKX_CHECK(cols > 0);
  const float inv_cols = 1.0f / static_cast<float>(cols);
#pragma omp parallel for schedule(static) default(none) \
    shared(dy, gamma, xhat, inv_std, dx) firstprivate(rows, cols, inv_cols)
  for (std::size_t i = 0; i < rows; ++i) {
    lnorm_bwd_row(dy + i * cols, gamma, xhat + i * cols, inv_std[i],
                  inv_cols, dx + i * cols, cols);
  }
}

inline void adam_update(float* w, const float* g, float* m, float* v,
                        std::size_t n, const AdamStep& s) {
  const float lr = s.lr;
  const float b1 = s.beta1;
  const float b2 = s.beta2;
  const float eps = s.eps;
  const float wd = s.weight_decay;
  const float ib1 = s.inv_bias1;
  const float ib2 = s.inv_bias2;
#pragma omp parallel for schedule(static) default(none) shared(w, g, m, v) \
    firstprivate(n, lr, b1, b2, eps, wd, ib1, ib2)
  for (std::size_t i0 = 0; i0 < n; i0 += kEwBlock) {
    adam_block(w + i0, g + i0, m + i0, v + i0, std::min(std::size_t{kEwBlock}, n - i0),
               lr, b1, b2, eps, wd, ib1, ib2);
  }
}

/// This ISA's table (one static instance per TU).
inline const KernelTable& table() {
  static const KernelTable t{
      TRKX_KERNELS_NAME, &gemm,    &gemm_nt,        &gemm_tn,
      &spmm,             &row_gather, &row_scatter_add,
      &ew_add,           &ew_sub,  &ew_mul,         &ew_scale,
      &ew_add_inplace,   &ew_axpy, &colwise_sum,    &rowwise_sum,
      &layer_norm_fwd,   &layer_norm_bwd_dx, &adam_update,
  };
  return t;
}

}  // namespace TRKX_KERNELS_NS
}  // namespace kernels
}  // namespace trkx
