#include "tensor/kernels/kernels.hpp"

#include <atomic>

#include "util/env.hpp"
#include "util/error.hpp"

namespace trkx {
namespace kernels {

namespace {

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<int> g_mode{static_cast<int>(SimdMode::kAuto)};

SimdMode mode_from_env() {
  const std::string mode = env::get_string("TRKX_SIMD");
  if (mode == "auto") return SimdMode::kAuto;
  if (mode == "scalar") return SimdMode::kScalar;
  if (mode == "avx2") return SimdMode::kAvx2;
  TRKX_CHECK_MSG(false, "TRKX_SIMD must be auto, avx2 or scalar; got '"
                            << mode << "'");
  return SimdMode::kAuto;
}

const KernelTable& resolve(SimdMode m) {
  switch (m) {
    case SimdMode::kScalar:
      return scalar_table();
    case SimdMode::kAvx2:
      TRKX_CHECK_MSG(host_has_avx2(),
                     "TRKX_SIMD=avx2 requested but this host lacks AVX2+FMA");
      return avx2_table();
    case SimdMode::kAuto:
    default:
      return host_has_avx2() ? avx2_table() : scalar_table();
  }
}

}  // namespace

bool host_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable& active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // First call resolves env + cpuid. A concurrent first call resolves
    // to the same table, so the racing stores are idempotent.
    const SimdMode m = mode_from_env();
    g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
    t = &resolve(m);
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

SimdMode mode() {
  active();
  return static_cast<SimdMode>(g_mode.load(std::memory_order_relaxed));
}

void set_mode(SimdMode m) {
  const KernelTable& t = resolve(m);  // validate before publishing
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
  g_active.store(&t, std::memory_order_release);
}

}  // namespace kernels
}  // namespace trkx
