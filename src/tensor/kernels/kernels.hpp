#pragma once

#include <cstddef>
#include <cstdint>

namespace trkx {
namespace kernels {

/// One fused Adam update's hyperparameters. Bias corrections are
/// precomputed by the caller (they depend on the step count) so the
/// kernel itself stays purely elementwise.
struct AdamStep {
  float lr;
  float beta1;
  float beta2;
  float eps;
  float weight_decay;
  float inv_bias1;
  float inv_bias2;
};

/// One ISA's implementation of every hot kernel. Two tables exist —
/// scalar (the reference, numerically identical to the historical loops
/// in ops.cpp/tape.cpp/optimizer.cpp) and AVX2 (explicitly vectorized,
/// FMA-contracted only where reassociation is allowed). Callers route
/// through active(); tests and benches may pin a table directly.
///
/// Numerics contract, enforced by tests/kernels_test.cpp:
///   - bit-identical across tables: row_gather, row_scatter_add (and so
///     segment_sum), every ew_* kernel, colwise_sum, adam_update — these
///     are elementwise or preserve the scalar accumulation order exactly,
///     and the AVX2 build never FMA-contracts them;
///   - ULP-bounded (reassociated reductions / FMA): gemm, gemm_nt,
///     gemm_tn, spmm, rowwise_sum, layer_norm_fwd, layer_norm_bwd_dx.
///
/// GEMM/SpMM outputs marked "accumulating" must be zero-filled by the
/// caller; the kernel adds into them.
struct KernelTable {
  const char* name;

  /// c (m×n, accumulating) += a (m×k) · b (k×n).
  void (*gemm)(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);
  /// c (m×n, overwritten) = a (m×k) · b (n×k)ᵀ.
  void (*gemm_nt)(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n);
  /// c (m×n, accumulating) += a (k×m)ᵀ · b (k×n).
  void (*gemm_tn)(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n);
  /// y (rows×f, accumulating) += CSR(row_ptr, col_idx, val) · x (·×f).
  void (*spmm)(const std::uint64_t* row_ptr, const std::uint32_t* col_idx,
               const float* val, const float* x, float* y, std::size_t rows,
               std::size_t f);

  /// out[i, :] = x[idx[i], :]; indices pre-validated by the caller.
  void (*row_gather)(const float* x, const std::uint32_t* idx, float* out,
                     std::size_t n_idx, std::size_t cols);
  /// dst[idx[i], :] += src[i, :]; serial over source rows (collisions).
  void (*row_scatter_add)(float* dst, const std::uint32_t* idx,
                          const float* src, std::size_t n_rows,
                          std::size_t cols);

  void (*ew_add)(const float* a, const float* b, float* o, std::size_t n);
  void (*ew_sub)(const float* a, const float* b, float* o, std::size_t n);
  void (*ew_mul)(const float* a, const float* b, float* o, std::size_t n);
  void (*ew_scale)(const float* a, float s, float* o, std::size_t n);
  /// a += b.
  void (*ew_add_inplace)(float* a, const float* b, std::size_t n);
  /// a += s * b (mul-then-add, never FMA: stays bit-identical to scalar).
  void (*ew_axpy)(float* a, float s, const float* b, std::size_t n);

  /// o (1×cols, accumulating) += column sums of a (rows×cols), in row
  /// order — the exact accumulation order of the historical serial loop.
  void (*colwise_sum)(const float* a, float* o, std::size_t rows,
                      std::size_t cols);
  /// o[i] = sum of row i (overwritten).
  void (*rowwise_sum)(const float* a, float* o, std::size_t rows,
                      std::size_t cols);

  /// Per-row layer norm: writes y = xhat*gamma + beta, the pre-affine
  /// xhat, and per-row 1/sqrt(var + eps).
  void (*layer_norm_fwd)(const float* x, const float* gamma,
                         const float* beta, float* y, float* xhat,
                         float* inv_std, std::size_t rows, std::size_t cols,
                         float eps);
  /// dx for layer norm given upstream dy, the saved xhat and inv_std.
  void (*layer_norm_bwd_dx)(const float* dy, const float* gamma,
                            const float* xhat, const float* inv_std,
                            float* dx, std::size_t rows, std::size_t cols);

  /// Fused Adam: updates w, m, v in place from gradient g.
  void (*adam_update)(float* w, const float* g, float* m, float* v,
                      std::size_t n, const AdamStep& s);
};

enum class SimdMode { kAuto = 0, kScalar, kAvx2 };

/// The dispatch-selected table. Resolved once, lazily: TRKX_SIMD env
/// (auto|avx2|scalar; anything else is a fatal config error) then cpuid.
/// TRKX_SIMD=avx2 on a host without AVX2+FMA is a fatal error; auto
/// silently falls back to scalar there.
const KernelTable& active();

/// The reference table (always safe to call).
const KernelTable& scalar_table();
/// The AVX2 table. Always linked; calling its kernels on a host without
/// AVX2+FMA raises SIGILL — check host_has_avx2() first.
const KernelTable& avx2_table();

/// True iff this host supports AVX2 and FMA.
bool host_has_avx2();

/// The currently requested mode (kAuto until overridden). active().name
/// tells which ISA kAuto resolved to.
SimdMode mode();
/// Test/bench hook: repoint active() (overrides TRKX_SIMD).
void set_mode(SimdMode m);

}  // namespace kernels
}  // namespace trkx
