// Scalar reference instantiation of the kernel bodies. Compiled with the
// project's baseline flags (no -mavx2/-mfma), so these loops generate the
// same code — and the same rounding — as the historical hot loops they
// replaced in ops.cpp / tape.cpp / optimizer.cpp.

#define TRKX_KERNELS_AVX2 0
#define TRKX_KERNELS_NS scalar_impl
#define TRKX_KERNELS_NAME "scalar"
#include "tensor/kernels/kernels_body.hpp"

namespace trkx {
namespace kernels {

const KernelTable& scalar_table() { return scalar_impl::table(); }

}  // namespace kernels
}  // namespace trkx
