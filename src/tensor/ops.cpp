#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels/kernels.hpp"

namespace trkx {

Matrix matmul(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch "
                                           << a.shape_str() << " x "
                                           << b.shape_str());
  Matrix c(a.rows(), b.cols(), 0.0f);
  kernels::active().gemm(a.data(), b.data(), c.data(), a.rows(), a.cols(),
                         b.cols());
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.cols() == b.cols(), "matmul_nt shape mismatch "
                                           << a.shape_str() << " x "
                                           << b.shape_str() << "^T");
  Matrix c(a.rows(), b.rows(), 0.0f);
  kernels::active().gemm_nt(a.data(), b.data(), c.data(), a.rows(), a.cols(),
                            b.rows());
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.rows() == b.rows(), "matmul_tn shape mismatch "
                                           << a.shape_str() << "^T x "
                                           << b.shape_str());
  Matrix c(a.cols(), b.cols(), 0.0f);
  kernels::active().gemm_tn(a.data(), b.data(), c.data(), a.cols(), a.rows(),
                            b.cols());
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  const std::size_t r = a.rows(), c = a.cols();
#pragma omp parallel for schedule(static) default(none) shared(out, a) \
    firstprivate(r, c)
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) out(j, i) = a(i, j);
  return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.same_shape(b), "add shape mismatch " << a.shape_str()
                                                        << " vs "
                                                        << b.shape_str());
  Matrix out(a.rows(), a.cols());
  kernels::active().ew_add(a.data(), b.data(), out.data(), a.size());
  return out;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.same_shape(b), "sub shape mismatch " << a.shape_str()
                                                        << " vs "
                                                        << b.shape_str());
  Matrix out(a.rows(), a.cols());
  kernels::active().ew_sub(a.data(), b.data(), out.data(), a.size());
  return out;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.same_shape(b), "hadamard shape mismatch "
                                      << a.shape_str() << " vs "
                                      << b.shape_str());
  Matrix out(a.rows(), a.cols());
  kernels::active().ew_mul(a.data(), b.data(), out.data(), a.size());
  return out;
}

Matrix scale(const Matrix& a, float s) {
  Matrix out(a.rows(), a.cols());
  kernels::active().ew_scale(a.data(), s, out.data(), a.size());
  return out;
}

void add_inplace(Matrix& a, const Matrix& b) {
  TRKX_CHECK(a.same_shape(b));
  kernels::active().ew_add_inplace(a.data(), b.data(), a.size());
}

void axpy_inplace(Matrix& a, float s, const Matrix& b) {
  TRKX_CHECK(a.same_shape(b));
  kernels::active().ew_axpy(a.data(), s, b.data(), a.size());
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
  TRKX_CHECK_MSG(row.rows() == 1 && row.cols() == a.cols(),
                 "broadcast shape mismatch " << a.shape_str() << " + "
                                             << row.shape_str());
  Matrix out(a.rows(), a.cols());
  const float* pr = row.data();
  const std::size_t r = a.rows(), c = a.cols();
#pragma omp parallel for schedule(static) default(none) shared(a, out, pr) \
    firstprivate(r, c)
  for (std::size_t i = 0; i < r; ++i) {
    const float* arow = a.data() + i * c;
    float* orow = out.data() + i * c;
    for (std::size_t j = 0; j < c; ++j) orow[j] = arow[j] + pr[j];
  }
  return out;
}

Matrix colwise_sum(const Matrix& a) {
  Matrix out(1, a.cols(), 0.0f);
  kernels::active().colwise_sum(a.data(), out.data(), a.rows(), a.cols());
  return out;
}

Matrix rowwise_sum(const Matrix& a) {
  Matrix out(a.rows(), 1, 0.0f);
  kernels::active().rowwise_sum(a.data(), out.data(), a.rows(), a.cols());
  return out;
}

Matrix concat_cols(const std::vector<const Matrix*>& blocks) {
  TRKX_CHECK(!blocks.empty());
  const std::size_t rows = blocks[0]->rows();
  std::size_t total_cols = 0;
  for (const Matrix* b : blocks) {
    TRKX_CHECK_MSG(b->rows() == rows, "concat_cols row mismatch");
    total_cols += b->cols();
  }
  Matrix out(rows, total_cols);
#pragma omp parallel for schedule(static) default(none) shared(out, blocks) \
    firstprivate(rows, total_cols)
  for (std::size_t i = 0; i < rows; ++i) {
    float* orow = out.data() + i * total_cols;
    std::size_t off = 0;
    for (const Matrix* b : blocks) {
      std::memcpy(orow + off, b->data() + i * b->cols(),
                  b->cols() * sizeof(float));
      off += b->cols();
    }
  }
  return out;
}

Matrix concat_rows(const std::vector<const Matrix*>& blocks) {
  TRKX_CHECK(!blocks.empty());
  const std::size_t cols = blocks[0]->cols();
  std::size_t total_rows = 0;
  for (const Matrix* b : blocks) {
    TRKX_CHECK_MSG(b->cols() == cols, "concat_rows col mismatch");
    total_rows += b->rows();
  }
  Matrix out(total_rows, cols);
  std::size_t off = 0;
  for (const Matrix* b : blocks) {
    std::memcpy(out.data() + off * cols, b->data(),
                b->size() * sizeof(float));
    off += b->rows();
  }
  return out;
}

Matrix slice_cols(const Matrix& a, std::size_t start, std::size_t len) {
  TRKX_CHECK(start + len <= a.cols());
  Matrix out(a.rows(), len);
  const std::size_t r = a.rows(), c = a.cols();
#pragma omp parallel for schedule(static) default(none) shared(out, a) \
    firstprivate(r, c, start, len)
  for (std::size_t i = 0; i < r; ++i) {
    std::memcpy(out.data() + i * len, a.data() + i * c + start,
                len * sizeof(float));
  }
  return out;
}

Matrix slice_rows(const Matrix& a, std::size_t start, std::size_t len) {
  TRKX_CHECK(start + len <= a.rows());
  Matrix out(len, a.cols());
  std::memcpy(out.data(), a.data() + start * a.cols(),
              len * a.cols() * sizeof(float));
  return out;
}

Matrix row_gather(const Matrix& x, const std::vector<std::uint32_t>& index) {
  // Validate before dispatching: exceptions may not cross the kernel's
  // internal OpenMP boundary.
  for (std::uint32_t idx : index) {
    TRKX_CHECK_MSG(idx < x.rows(),
                   "row_gather index " << idx << " out of range " << x.rows());
  }
  Matrix out(index.size(), x.cols());
  kernels::active().row_gather(x.data(), index.data(), out.data(),
                               index.size(), x.cols());
  return out;
}

void row_scatter_add(Matrix& dst, const std::vector<std::uint32_t>& index,
                     const Matrix& src) {
  TRKX_CHECK(index.size() == src.rows());
  TRKX_CHECK(dst.cols() == src.cols());
  for (std::uint32_t idx : index) {
    TRKX_CHECK_MSG(idx < dst.rows(), "row_scatter_add index "
                                         << idx << " out of range "
                                         << dst.rows());
  }
  kernels::active().row_scatter_add(dst.data(), index.data(), src.data(),
                                    index.size(), dst.cols());
}

Matrix segment_sum(const Matrix& y, const std::vector<std::uint32_t>& index,
                   std::size_t num_segments) {
  Matrix out(num_segments, y.cols(), 0.0f);
  row_scatter_add(out, index, y);
  return out;
}

bool all_finite(const Matrix& a) {
  for (float v : a.flat())
    if (!std::isfinite(v)) return false;
  return true;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  TRKX_CHECK(a.same_shape(b));
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  return m;
}

bool allclose(const Matrix& a, const Matrix& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    const float tol = atol + rtol * std::max(std::fabs(pa[i]),
                                             std::fabs(pb[i]));
    if (diff > tol || std::isnan(diff)) return false;
  }
  return true;
}

}  // namespace trkx
