#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace trkx {

namespace {
/// Micro-kernel tile size for the k-loop blocking in matmul. Chosen to keep
/// one tile of B rows in L1; not autotuned — the matrices here are small
/// (hidden dim ≤ 256) so a simple blocking suffices.
constexpr std::size_t kTile = 64;
}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch "
                                           << a.shape_str() << " x "
                                           << b.shape_str());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n, 0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order with k-tiling: unit-stride inner loop over both B and C.
#pragma omp parallel for schedule(static) default(none) shared(pa, pb, pc) \
    firstprivate(m, k, n)
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
      const std::size_t k1 = std::min(k0 + kTile, k);
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const float aik = pa[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = pb + kk * n;
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.cols() == b.cols(), "matmul_nt shape mismatch "
                                           << a.shape_str() << " x "
                                           << b.shape_str() << "^T");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n, 0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Both A rows and B rows are contiguous: dot-product form.
#pragma omp parallel for schedule(static) default(none) shared(pa, pb, pc) \
    firstprivate(m, k, n)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  TRKX_CHECK_MSG(a.rows() == b.rows(), "matmul_tn shape mismatch "
                                           << a.shape_str() << "^T x "
                                           << b.shape_str());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n, 0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Parallelise over output rows (columns of A) to avoid write conflicts.
#pragma omp parallel for schedule(static) default(none) shared(pa, pb, pc) \
    firstprivate(m, k, n)
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aki = pa[kk * m + i];
      if (aki == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  const std::size_t r = a.rows(), c = a.cols();
#pragma omp parallel for schedule(static) default(none) shared(out, a) \
    firstprivate(r, c)
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) out(j, i) = a(i, j);
  return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
  return apply2(a, b, [](float x, float y) { return x + y; });
}

Matrix sub(const Matrix& a, const Matrix& b) {
  return apply2(a, b, [](float x, float y) { return x - y; });
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  return apply2(a, b, [](float x, float y) { return x * y; });
}

Matrix scale(const Matrix& a, float s) {
  return apply(a, [s](float x) { return x * s; });
}

void add_inplace(Matrix& a, const Matrix& b) {
  TRKX_CHECK(a.same_shape(b));
  float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
#pragma omp parallel for schedule(static) default(none) shared(pa, pb) \
    firstprivate(n)
  for (std::size_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void axpy_inplace(Matrix& a, float s, const Matrix& b) {
  TRKX_CHECK(a.same_shape(b));
  float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
#pragma omp parallel for schedule(static) default(none) shared(pa, pb) \
    firstprivate(n, s)
  for (std::size_t i = 0; i < n; ++i) pa[i] += s * pb[i];
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
  TRKX_CHECK_MSG(row.rows() == 1 && row.cols() == a.cols(),
                 "broadcast shape mismatch " << a.shape_str() << " + "
                                             << row.shape_str());
  Matrix out(a.rows(), a.cols());
  const float* pr = row.data();
  const std::size_t r = a.rows(), c = a.cols();
#pragma omp parallel for schedule(static) default(none) shared(a, out, pr) \
    firstprivate(r, c)
  for (std::size_t i = 0; i < r; ++i) {
    const float* arow = a.data() + i * c;
    float* orow = out.data() + i * c;
    for (std::size_t j = 0; j < c; ++j) orow[j] = arow[j] + pr[j];
  }
  return out;
}

Matrix colwise_sum(const Matrix& a) {
  Matrix out(1, a.cols(), 0.0f);
  float* po = out.data();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) po[j] += arow[j];
  }
  return out;
}

Matrix rowwise_sum(const Matrix& a) {
  Matrix out(a.rows(), 1, 0.0f);
  const std::size_t r = a.rows(), c = a.cols();
#pragma omp parallel for schedule(static) default(none) shared(a, out) \
    firstprivate(r, c)
  for (std::size_t i = 0; i < r; ++i) {
    const float* arow = a.data() + i * c;
    float acc = 0.0f;
    for (std::size_t j = 0; j < c; ++j) acc += arow[j];
    out(i, 0) = acc;
  }
  return out;
}

Matrix concat_cols(const std::vector<const Matrix*>& blocks) {
  TRKX_CHECK(!blocks.empty());
  const std::size_t rows = blocks[0]->rows();
  std::size_t total_cols = 0;
  for (const Matrix* b : blocks) {
    TRKX_CHECK_MSG(b->rows() == rows, "concat_cols row mismatch");
    total_cols += b->cols();
  }
  Matrix out(rows, total_cols);
#pragma omp parallel for schedule(static) default(none) shared(out, blocks) \
    firstprivate(rows, total_cols)
  for (std::size_t i = 0; i < rows; ++i) {
    float* orow = out.data() + i * total_cols;
    std::size_t off = 0;
    for (const Matrix* b : blocks) {
      std::memcpy(orow + off, b->data() + i * b->cols(),
                  b->cols() * sizeof(float));
      off += b->cols();
    }
  }
  return out;
}

Matrix concat_rows(const std::vector<const Matrix*>& blocks) {
  TRKX_CHECK(!blocks.empty());
  const std::size_t cols = blocks[0]->cols();
  std::size_t total_rows = 0;
  for (const Matrix* b : blocks) {
    TRKX_CHECK_MSG(b->cols() == cols, "concat_rows col mismatch");
    total_rows += b->rows();
  }
  Matrix out(total_rows, cols);
  std::size_t off = 0;
  for (const Matrix* b : blocks) {
    std::memcpy(out.data() + off * cols, b->data(),
                b->size() * sizeof(float));
    off += b->rows();
  }
  return out;
}

Matrix slice_cols(const Matrix& a, std::size_t start, std::size_t len) {
  TRKX_CHECK(start + len <= a.cols());
  Matrix out(a.rows(), len);
  const std::size_t r = a.rows(), c = a.cols();
#pragma omp parallel for schedule(static) default(none) shared(out, a) \
    firstprivate(r, c, start, len)
  for (std::size_t i = 0; i < r; ++i) {
    std::memcpy(out.data() + i * len, a.data() + i * c + start,
                len * sizeof(float));
  }
  return out;
}

Matrix slice_rows(const Matrix& a, std::size_t start, std::size_t len) {
  TRKX_CHECK(start + len <= a.rows());
  Matrix out(len, a.cols());
  std::memcpy(out.data(), a.data() + start * a.cols(),
              len * a.cols() * sizeof(float));
  return out;
}

Matrix row_gather(const Matrix& x, const std::vector<std::uint32_t>& index) {
  // Validate outside the parallel region: exceptions may not cross an
  // OpenMP boundary.
  for (std::uint32_t idx : index) {
    TRKX_CHECK_MSG(idx < x.rows(),
                   "row_gather index " << idx << " out of range " << x.rows());
  }
  Matrix out(index.size(), x.cols());
  const std::size_t c = x.cols(), n = index.size();
#pragma omp parallel for schedule(static) default(none) shared(out, x, index) \
    firstprivate(n, c)
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * c, x.data() + index[i] * c,
                c * sizeof(float));
  }
  return out;
}

void row_scatter_add(Matrix& dst, const std::vector<std::uint32_t>& index,
                     const Matrix& src) {
  TRKX_CHECK(index.size() == src.rows());
  TRKX_CHECK(dst.cols() == src.cols());
  const std::size_t c = dst.cols();
  // Serial over src rows: scatter targets collide, and the graphs here have
  // high-degree vertices, so per-row atomics would be slower than this loop.
  for (std::size_t i = 0; i < index.size(); ++i) {
    TRKX_CHECK_MSG(index[i] < dst.rows(), "row_scatter_add index "
                                              << index[i] << " out of range "
                                              << dst.rows());
    float* drow = dst.data() + index[i] * c;
    const float* srow = src.data() + i * c;
    for (std::size_t j = 0; j < c; ++j) drow[j] += srow[j];
  }
}

Matrix segment_sum(const Matrix& y, const std::vector<std::uint32_t>& index,
                   std::size_t num_segments) {
  Matrix out(num_segments, y.cols(), 0.0f);
  row_scatter_add(out, index, y);
  return out;
}

bool all_finite(const Matrix& a) {
  for (float v : a.flat())
    if (!std::isfinite(v)) return false;
  return true;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  TRKX_CHECK(a.same_shape(b));
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  return m;
}

bool allclose(const Matrix& a, const Matrix& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    const float tol = atol + rtol * std::max(std::fabs(pa[i]),
                                             std::fabs(pb[i]));
    if (diff > tol || std::isnan(diff)) return false;
  }
  return true;
}

}  // namespace trkx
