#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace trkx {

/// Dense row-major float32 matrix.
///
/// This is the only dense tensor type in the library: GNN training on
/// graphs only ever needs rank-2 data (node features n×f, edge features
/// m×f, parameters f×f), so a dedicated 2-D type keeps kernels simple and
/// fast. Vectors are represented as 1×n or n×1 matrices.
///
/// Storage is recycled through TensorPool: constructing and destroying a
/// Matrix of a previously-seen size is a thread-local free-list pop/push,
/// which is what keeps the autograd tape's per-op allocations off the
/// system allocator.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0f);
  }
  static Matrix ones(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 1.0f);
  }
  static Matrix identity(std::size_t n);
  /// I.i.d. uniform in [lo, hi).
  static Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                               float lo = 0.0f, float hi = 1.0f);
  /// I.i.d. normal(mean, stddev).
  static Matrix random_normal(std::size_t rows, std::size_t cols, Rng& rng,
                              float mean = 0.0f, float stddev = 1.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    TRKX_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    TRKX_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  /// Unchecked access for hot kernels.
  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> row(std::size_t r) {
    TRKX_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    TRKX_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  void fill(float value);
  void resize(std::size_t rows, std::size_t cols, float fill = 0.0f);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Frobenius norm, max |x|, and elementwise sum — handy for tests.
  double frobenius_norm() const;
  float abs_max() const;
  double sum() const;

  /// True if all elements are finite (no NaN/Inf).
  bool all_finite() const;

  std::string shape_str() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  PooledFloatBuffer data_;
};

}  // namespace trkx
