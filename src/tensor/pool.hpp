#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trkx {

/// Size-bucketed recycling pool for dense tensor buffers.
///
/// Every Matrix allocation in the library goes through this pool (via
/// PoolAllocator below), so the autograd tape's per-op Matrix churn —
/// which dominates small-hidden-dim training steps — turns into
/// thread-local free-list pushes and pops instead of malloc/free pairs.
///
/// Design:
///   - Requests are rounded up to power-of-two buckets (min 256 bytes);
///     release() returns the block to the *releasing* thread's free list,
///     so buffers produced on a prefetch thread and freed on the trainer
///     thread simply migrate between caches without synchronisation.
///   - Each thread caches at most `max_cached_bytes()` (default 128 MB,
///     env TRKX_POOL_MAX_MB); beyond that, releases fall through to the
///     system allocator. Requests above the largest bucket (64 MB) bypass
///     the pool entirely.
///   - The pool is enabled by default; set TRKX_TENSOR_POOL=0 (or call
///     set_enabled(false)) to fall back to plain new/delete everywhere —
///     useful for allocator-sensitive debugging (ASan still sees every
///     block either way; cached blocks are merely reused, never shrunk).
///
/// Stats are kept per thread with uncontended relaxed atomics and merged
/// on read; training loops publish them as pool.* gauges each epoch.
class TensorPool {
 public:
  /// A buffer of at least `bytes` (bucket-rounded). Never returns null
  /// for bytes > 0; acquire(0) returns null.
  static void* acquire(std::size_t bytes);
  /// Return a buffer obtained from acquire() with the same `bytes`.
  static void release(void* p, std::size_t bytes);

  static bool enabled();
  static void set_enabled(bool on);

  /// Aggregated over all threads (live caches plus retired threads).
  struct Stats {
    std::uint64_t hits = 0;        ///< acquires served from a free list
    std::uint64_t misses = 0;      ///< acquires that hit the system allocator
    std::uint64_t returns = 0;     ///< releases cached for reuse
    std::uint64_t evictions = 0;   ///< releases freed (cache full / bypass)
    std::uint64_t bytes_cached = 0;  ///< currently sitting in free lists
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };
  static Stats stats();
  /// Zero the hit/miss/return/eviction counters (cached bytes stay).
  static void reset_stats();

  /// Free every block cached by the calling thread.
  static void clear_thread_cache();

  /// Per-thread cache cap in bytes (TRKX_POOL_MAX_MB, default 128 MB).
  static std::size_t max_cached_bytes();
};

/// Minimal stateless allocator routing std::vector storage through
/// TensorPool. All instances compare equal, so containers with this
/// allocator swap/move freely.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(TensorPool::acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    TensorPool::release(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const {
    return false;
  }
};

/// The storage type behind Matrix: a float vector recycled through the
/// pool across autograd tape steps.
using PooledFloatBuffer = std::vector<float, PoolAllocator<float>>;

}  // namespace trkx
