#include "tensor/pool.hpp"

#include <atomic>

#include "tensor/plan.hpp"
#include <cstdint>
#include <new>
#include <vector>

#include "util/annotations.hpp"
#include "util/env.hpp"

// ASan manual poisoning: blocks parked on a free list are poisoned so a
// use-after-release through the pool faults immediately instead of being
// masked by recycling; acquire() unpoisons before handing the block out.
// This is the TRKX_SANITIZE=address interlock — the pool stays enabled
// under ASan and stays bug-detecting.
#if defined(__SANITIZE_ADDRESS__)
#define TRKX_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TRKX_POOL_ASAN 1
#endif
#endif
#ifndef TRKX_POOL_ASAN
#define TRKX_POOL_ASAN 0
#endif
#if TRKX_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace trkx {
namespace {

// Power-of-two buckets from 256 B to 64 MB. Anything larger bypasses the
// pool (a single full-graph activation matrix, say) — those allocations
// are rare enough that malloc is not the bottleneck.
constexpr std::size_t kMinBucketBytes = 256;
constexpr std::size_t kMaxBucketBytes = std::size_t{1} << 26;
constexpr std::size_t kNumBuckets = 19;  // 2^8 .. 2^26

/// Bucket index for a request, or kNumBuckets when it bypasses the pool.
std::size_t bucket_index(std::size_t bytes) {
  if (bytes > kMaxBucketBytes) return kNumBuckets;
  std::size_t idx = 0;
  std::size_t cap = kMinBucketBytes;
  while (cap < bytes) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

std::size_t bucket_bytes(std::size_t idx) { return kMinBucketBytes << idx; }

struct ThreadCache;

void poison_block(void* p, std::size_t bytes) {
#if TRKX_POOL_ASAN
  __asan_poison_memory_region(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}

void unpoison_block(void* p, std::size_t bytes) {
#if TRKX_POOL_ASAN
  __asan_unpoison_memory_region(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}

/// Leaked process-wide registry of live thread caches plus the folded
/// counters of exited threads; stats() merges both. Leaked on purpose so
/// thread-exit destructors can always reach it.
struct Registry {
  Mutex mutex;
  std::vector<ThreadCache*> caches TRKX_GUARDED_BY(mutex);
  TensorPool::Stats retired TRKX_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry;  // NOLINT(trkx-naked-new): leaked singleton
  return *r;
}

std::size_t read_max_cached_bytes() {
  const long mb = env::get_int("TRKX_POOL_MAX_MB");
  if (mb >= 0) return static_cast<std::size_t>(mb) << 20;
  return std::size_t{128} << 20;
}

bool read_enabled() { return env::get_bool("TRKX_TENSOR_POOL"); }

std::atomic<bool> g_enabled{read_enabled()};

// Set by ~ThreadCache. On the main thread every thread_local is destroyed
// before objects with static storage duration, so a static-lifetime Matrix
// freed during program teardown would otherwise push into the dead cache's
// free lists (use-after-free). The flag itself is trivially destructible
// and zero-initialized, so it stays readable through thread exit.
thread_local bool t_cache_dead = false;

struct ThreadCache {
  std::vector<void*> free_lists[kNumBuckets];
  std::size_t bytes_cached = 0;
  // Owner-written, cross-thread-read (stats aggregation): relaxed atomics.
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> returns{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> bytes_cached_pub{0};

  ThreadCache() {
    Registry& r = registry();
    LockGuard lock(r.mutex);
    r.caches.push_back(this);
  }

  ~ThreadCache() {
    drop_blocks();
    Registry& r = registry();
    LockGuard lock(r.mutex);
    r.retired.hits += hits.load(std::memory_order_relaxed);
    r.retired.misses += misses.load(std::memory_order_relaxed);
    r.retired.returns += returns.load(std::memory_order_relaxed);
    r.retired.evictions += evictions.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < r.caches.size(); ++i) {
      if (r.caches[i] == this) {
        r.caches.erase(r.caches.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    t_cache_dead = true;
  }

  void drop_blocks() {
    for (std::size_t idx = 0; idx < kNumBuckets; ++idx) {
      for (void* p : free_lists[idx]) {
        // Cached blocks are poisoned; unpoison before returning them to
        // the system allocator so ASan's free() hook sees clean memory.
        unpoison_block(p, bucket_bytes(idx));
        ::operator delete(p);
      }
      free_lists[idx].clear();
    }
    bytes_cached = 0;
    bytes_cached_pub.store(0, std::memory_order_relaxed);
  }
};

// Null once the thread's cache has been destroyed: callers must then
// bypass the pool and talk to the system allocator directly.
ThreadCache* local_cache() {
  if (t_cache_dead) return nullptr;
  thread_local ThreadCache cache;
  return &cache;
}

/// The pool's own allocation path (bucket free lists + system fallback),
/// shared by the planner-aware front door below.
void* acquire_impl(std::size_t bytes) {
  const std::size_t idx = bucket_index(bytes);
  // Always allocate bucket-rounded sizes so a block's real capacity is a
  // pure function of the request size, regardless of when the pool was
  // enabled — release() can then cache any block safely.
  const std::size_t alloc_bytes =
      idx < kNumBuckets ? bucket_bytes(idx) : bytes;
  ThreadCache* cache = local_cache();
  if (cache == nullptr) return ::operator new(alloc_bytes);
  if (idx < kNumBuckets && g_enabled.load(std::memory_order_relaxed)) {
    auto& list = cache->free_lists[idx];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      unpoison_block(p, alloc_bytes);
      cache->bytes_cached -= alloc_bytes;
      cache->bytes_cached_pub.store(cache->bytes_cached,
                                    std::memory_order_relaxed);
      cache->hits.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  cache->misses.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(alloc_bytes);
}

}  // namespace

void* TensorPool::acquire(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  // A replaying memory plan serves tape-step buffers straight from its
  // arena; the pool only sees the allocations the plan declines.
  if (void* p = plan_detail::plan_acquire(bytes)) return p;
  void* p = acquire_impl(bytes);
  plan_detail::plan_record(p, bytes);
  return p;
}

void TensorPool::release(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  // Arena-owned pointers are the planner's: they must never enter the
  // pool's free lists or reach the system allocator.
  if (plan_detail::plan_release(p, bytes)) return;
  const std::size_t idx = bucket_index(bytes);
  ThreadCache* cache = local_cache();
  if (cache == nullptr) {
    ::operator delete(p);
    return;
  }
  if (idx < kNumBuckets && g_enabled.load(std::memory_order_relaxed)) {
    const std::size_t cap = bucket_bytes(idx);
    if (cache->bytes_cached + cap <= max_cached_bytes()) {
      cache->free_lists[idx].push_back(p);
      poison_block(p, cap);
      cache->bytes_cached += cap;
      cache->bytes_cached_pub.store(cache->bytes_cached,
                                    std::memory_order_relaxed);
      cache->returns.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  cache->evictions.fetch_add(1, std::memory_order_relaxed);
  ::operator delete(p);
}

bool TensorPool::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void TensorPool::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

TensorPool::Stats TensorPool::stats() {
  Registry& r = registry();
  LockGuard lock(r.mutex);
  Stats s = r.retired;
  for (const ThreadCache* c : r.caches) {
    s.hits += c->hits.load(std::memory_order_relaxed);
    s.misses += c->misses.load(std::memory_order_relaxed);
    s.returns += c->returns.load(std::memory_order_relaxed);
    s.evictions += c->evictions.load(std::memory_order_relaxed);
    s.bytes_cached += c->bytes_cached_pub.load(std::memory_order_relaxed);
  }
  return s;
}

void TensorPool::reset_stats() {
  Registry& r = registry();
  LockGuard lock(r.mutex);
  r.retired = Stats{};
  for (ThreadCache* c : r.caches) {
    c->hits.store(0, std::memory_order_relaxed);
    c->misses.store(0, std::memory_order_relaxed);
    c->returns.store(0, std::memory_order_relaxed);
    c->evictions.store(0, std::memory_order_relaxed);
  }
}

void TensorPool::clear_thread_cache() {
  if (ThreadCache* cache = local_cache()) cache->drop_blocks();
}

std::size_t TensorPool::max_cached_bytes() {
  static const std::size_t cap = read_max_cached_bytes();
  return cap;
}

}  // namespace trkx
