#include "tensor/plan.hpp"

#include <algorithm>
#include <atomic>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/env.hpp"

// Same ASan interlock as pool.cpp: arena bytes are poisoned except while
// a planned buffer is live, so a use-after-release through the planner
// faults immediately instead of reading recycled data.
#if defined(__SANITIZE_ADDRESS__)
#define TRKX_PLAN_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TRKX_PLAN_ASAN 1
#endif
#endif
#ifndef TRKX_PLAN_ASAN
#define TRKX_PLAN_ASAN 0
#endif
#if TRKX_PLAN_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace trkx {
namespace {

constexpr std::size_t kAlign = 64;        // slot alignment (cache line)
constexpr std::size_t kGuard = 64;        // poisoned gap between slots
constexpr std::size_t kMaxPlans = 8;      // per-thread plan cache (LRU)
constexpr int kMaxArenas = 16;            // global registry capacity
constexpr std::size_t kMaxEvents = std::size_t{1} << 17;
constexpr int kGraveyardSweeps = 2;       // idle sweeps before arena free

void plan_poison(void* p, std::size_t bytes) {
#if TRKX_PLAN_ASAN
  __asan_poison_memory_region(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}

void plan_unpoison(void* p, std::size_t bytes) {
#if TRKX_PLAN_ASAN
  __asan_unpoison_memory_region(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}

std::size_t align_up(std::size_t v) { return (v + (kAlign - 1)) & ~(kAlign - 1); }

bool read_plan_enabled() { return env::get_bool("TRKX_MEM_PLAN"); }

std::atomic<bool> g_plan_enabled{read_plan_enabled()};

// ---------------------------------------------------------------------
// Global arena registry. Releases of planner memory can arrive on any
// code path (including after a plan died mid-step), so every release
// first asks "is this pointer inside a live arena?". The registry is a
// fixed lock-free slot array: near-free to scan when no arenas exist,
// and bounded so a runaway plan count disables planning rather than
// growing shared state. Arena lifetime is owner-thread-managed with a
// deferred-free graveyard (see ThreadPlans) so in-flight registry reads
// never see a freed arena.
// ---------------------------------------------------------------------

struct ArenaSlot {
  std::atomic<bool> used{false};
  std::atomic<char*> base{nullptr};
  std::atomic<std::size_t> size{0};
  std::atomic<std::int64_t> outstanding{0};
};

ArenaSlot g_arenas[kMaxArenas];
std::atomic<int> g_num_arenas{0};
std::atomic<std::uint64_t> g_arena_bytes{0};
std::atomic<std::uint64_t> g_plan_reuses{0};
std::atomic<std::uint64_t> g_replans{0};

int register_arena(char* base, std::size_t size) {
  for (int i = 0; i < kMaxArenas; ++i) {
    bool expect = false;
    if (g_arenas[i].used.compare_exchange_strong(expect, true,
                                                 std::memory_order_acq_rel)) {
      g_arenas[i].size.store(size, std::memory_order_relaxed);
      g_arenas[i].outstanding.store(0, std::memory_order_relaxed);
      // base is the publish: readers acquire-load it before touching size.
      g_arenas[i].base.store(base, std::memory_order_release);
      g_num_arenas.fetch_add(1, std::memory_order_relaxed);
      g_arena_bytes.fetch_add(size, std::memory_order_relaxed);
      return i;
    }
  }
  return -1;
}

void unregister_arena(int slot) {
  const std::size_t size = g_arenas[slot].size.load(std::memory_order_relaxed);
  g_arenas[slot].base.store(nullptr, std::memory_order_release);
  g_arenas[slot].size.store(0, std::memory_order_relaxed);
  g_arenas[slot].used.store(false, std::memory_order_release);
  g_num_arenas.fetch_sub(1, std::memory_order_relaxed);
  g_arena_bytes.fetch_sub(size, std::memory_order_relaxed);
}

int find_arena(const void* p) {
  for (int i = 0; i < kMaxArenas; ++i) {
    const char* b = g_arenas[i].base.load(std::memory_order_acquire);
    if (b == nullptr) continue;
    const std::size_t sz = g_arenas[i].size.load(std::memory_order_relaxed);
    if (p >= b && p < b + sz) return i;
  }
  return -1;
}

// ---------------------------------------------------------------------
// Plans and the per-thread planner state.
// ---------------------------------------------------------------------

struct Event {
  enum Kind : std::uint8_t { kAcqArena, kAcqPool, kRel };
  Kind kind;
  std::size_t bytes;   // the original request size (pool rounds itself)
  std::size_t offset;  // arena offset (kAcqArena / kRel only)
};

struct Plan {
  std::uint64_t sig = 0;
  std::vector<Event> events;
  std::size_t arena_size = 0;
  char* arena = nullptr;
  int arena_slot = -1;
  std::uint64_t last_use = 0;
  bool dead = false;
};

/// First-fit free-interval allocator over an unbounded arena; the high
/// watermark after simulating the whole event stream is the arena size.
class IntervalAlloc {
 public:
  std::size_t alloc(std::size_t len) {
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].len >= len) {
        const std::size_t off = free_[i].off;
        free_[i].off += len;
        free_[i].len -= len;
        if (free_[i].len == 0) free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
        return off;
      }
    }
    const std::size_t off = tail_;
    tail_ += len;
    return off;
  }

  void release(std::size_t off, std::size_t len) {
    // Insert sorted and coalesce with neighbours.
    std::size_t i = 0;
    while (i < free_.size() && free_[i].off < off) ++i;
    free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(i), {off, len});
    if (i + 1 < free_.size() && free_[i].off + free_[i].len == free_[i + 1].off) {
      free_[i].len += free_[i + 1].len;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i + 1));
    }
    if (i > 0 && free_[i - 1].off + free_[i - 1].len == free_[i].off) {
      free_[i - 1].len += free_[i].len;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (!free_.empty() && free_.back().off + free_.back().len == tail_) {
      tail_ = free_.back().off;
      free_.pop_back();
    }
  }

  std::size_t watermark() const { return watermark_; }
  void note_watermark() { watermark_ = std::max(watermark_, tail_); }

 private:
  struct Iv {
    std::size_t off, len;
  };
  std::vector<Iv> free_;
  std::size_t tail_ = 0;
  std::size_t watermark_ = 0;
};

enum class Phase { kIdle, kRecord, kReplay };

struct RecSlot {
  std::size_t bytes = 0;
  std::size_t acq_event = 0;
  bool released = false;
};

struct Recording {
  struct RecEvent {
    bool is_acquire;
    std::size_t slot;
  };
  std::vector<RecEvent> events;
  std::vector<RecSlot> slots;
  std::unordered_map<const void*, std::size_t> open;  // live ptr -> slot
  bool overflowed = false;

  void reset() {
    events.clear();
    slots.clear();
    open.clear();
    overflowed = false;
  }
};

struct ThreadPlans {
  Phase phase = Phase::kIdle;
  std::uint64_t tick = 0;

  Recording rec;
  std::uint64_t rec_sig = 0;

  Plan* cur = nullptr;
  std::size_t cursor = 0;
  bool diverged = false;

  std::vector<Plan*> plans;                      // owned, ≤ kMaxPlans
  std::vector<std::pair<Plan*, int>> graveyard;  // dead plans, idle sweeps seen

  ~ThreadPlans();
};

thread_local bool t_plans_dead = false;

void destroy_plan(Plan* plan) {
  if (plan->arena != nullptr) {
    plan_unpoison(plan->arena, plan->arena_size);
    if (plan->arena_slot >= 0) unregister_arena(plan->arena_slot);
    ::operator delete(plan->arena);
    plan->arena = nullptr;
  }
  delete plan;
}

/// Free graveyard plans whose arenas have been idle (no outstanding
/// pointers) for kGraveyardSweeps consecutive sweeps. The deferral keeps
/// a registry slot alive across the window in which another thread may
/// still be routing a release through find_arena().
void sweep_graveyard(ThreadPlans& tp) {
  for (std::size_t i = 0; i < tp.graveyard.size();) {
    auto& [plan, sweeps] = tp.graveyard[i];
    const bool idle =
        plan->arena == nullptr || plan->arena_slot < 0 ||
        g_arenas[plan->arena_slot].outstanding.load(
            std::memory_order_acquire) == 0;
    sweeps = idle ? sweeps + 1 : 0;
    if (sweeps >= kGraveyardSweeps) {
      destroy_plan(plan);
      tp.graveyard.erase(tp.graveyard.begin() +
                         static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void retire_plan(ThreadPlans& tp, Plan* plan) {
  plan->dead = true;
  tp.plans.erase(std::remove(tp.plans.begin(), tp.plans.end(), plan),
                 tp.plans.end());
  tp.graveyard.emplace_back(plan, 0);
}

ThreadPlans::~ThreadPlans() {
  // Free what can be freed; leak arenas that still have live pointers
  // (their registry slots stay valid so stray releases keep routing).
  for (Plan* plan : plans) graveyard.emplace_back(plan, 0);
  plans.clear();
  for (auto& [plan, sweeps] : graveyard) {
    (void)sweeps;
    const bool idle =
        plan->arena == nullptr || plan->arena_slot < 0 ||
        g_arenas[plan->arena_slot].outstanding.load(
            std::memory_order_acquire) == 0;
    if (idle) destroy_plan(plan);
  }
  graveyard.clear();
  t_plans_dead = true;
}

ThreadPlans* local_plans() {
  if (t_plans_dead) return nullptr;
  thread_local ThreadPlans tp;
  return &tp;
}

/// Turn a finished recording into a plan: acquisitions with no in-scope
/// release escape to the pool; everything else gets a first-fit arena
/// offset from its liveness interval.
Plan* build_plan(std::uint64_t sig, Recording& rec) {
  if (rec.overflowed || rec.events.empty()) return nullptr;
  // Escapes: still-open pointers never saw their release in scope, so
  // they must be pool-served (their lifetime is not plannable).
  std::vector<bool> escaped(rec.slots.size(), false);
  for (const auto& [ptr, slot] : rec.open) {
    (void)ptr;
    escaped[slot] = true;
  }

  IntervalAlloc alloc;
  std::vector<std::size_t> slot_offset(rec.slots.size(), 0);
  std::vector<Event> events;
  events.reserve(rec.events.size());
  bool any_arena = false;
  for (const auto& re : rec.events) {
    const std::size_t bytes = rec.slots[re.slot].bytes;
    if (re.is_acquire) {
      if (escaped[re.slot]) {
        events.push_back({Event::kAcqPool, bytes, 0});
      } else {
        const std::size_t len = align_up(bytes) + kGuard;
        const std::size_t off = alloc.alloc(len);
        alloc.note_watermark();
        slot_offset[re.slot] = off;
        events.push_back({Event::kAcqArena, bytes, off});
        any_arena = true;
      }
    } else {
      const std::size_t off = slot_offset[re.slot];
      events.push_back({Event::kRel, bytes, off});
      alloc.release(off, align_up(bytes) + kGuard);
    }
  }
  if (!any_arena) return nullptr;

  Plan* plan = new Plan;  // NOLINT(trkx-naked-new): owned by ThreadPlans, freed in destroy_plan
  plan->sig = sig;
  plan->events = std::move(events);
  plan->arena_size = alloc.watermark();
  return plan;
}

void start_replay(ThreadPlans& tp, Plan* plan) {
  if (plan->arena == nullptr) {
    plan->arena = static_cast<char*>(::operator new(plan->arena_size));
    plan->arena_slot = register_arena(plan->arena, plan->arena_size);
    if (plan->arena_slot < 0) {
      // Registry full: too many live arenas to track releases safely.
      ::operator delete(plan->arena);
      plan->arena = nullptr;
      retire_plan(tp, plan);
      return;
    }
    plan_poison(plan->arena, plan->arena_size);
  }
  tp.phase = Phase::kReplay;
  tp.cur = plan;
  tp.cursor = 0;
  tp.diverged = false;
}

void diverge(ThreadPlans& tp) {
  tp.diverged = true;
  // The rest of the step is pool-served; outstanding arena pointers
  // drain through the registry as their owners release them.
}

}  // namespace

// ---------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------

MemoryPlanner::Scope::Scope(std::uint64_t signature) {
  if (!g_plan_enabled.load(std::memory_order_relaxed)) return;
  ThreadPlans* tp = local_plans();
  if (tp == nullptr || tp->phase != Phase::kIdle) return;
  active_ = true;
  ++tp->tick;
  sweep_graveyard(*tp);

  for (Plan* plan : tp->plans) {
    if (plan->sig == signature && !plan->dead) {
      plan->last_use = tp->tick;
      start_replay(*tp, plan);
      return;
    }
  }
  tp->rec.reset();
  tp->rec_sig = signature;
  tp->phase = Phase::kRecord;
}

MemoryPlanner::Scope::~Scope() {
  if (!active_) return;
  ThreadPlans* tp = local_plans();
  if (tp == nullptr) return;
  if (tp->phase == Phase::kRecord) {
    tp->phase = Phase::kIdle;
    Plan* plan = build_plan(tp->rec_sig, tp->rec);
    tp->rec.reset();
    if (plan != nullptr) {
      plan->last_use = tp->tick;
      if (tp->plans.size() >= kMaxPlans) {
        auto lru = std::min_element(tp->plans.begin(), tp->plans.end(),
                                    [](const Plan* a, const Plan* b) {
                                      return a->last_use < b->last_use;
                                    });
        Plan* victim = *lru;
        retire_plan(*tp, victim);
      }
      tp->plans.push_back(plan);
    }
  } else if (tp->phase == Phase::kReplay) {
    Plan* plan = tp->cur;
    tp->phase = Phase::kIdle;
    tp->cur = nullptr;
    if (!tp->diverged && tp->cursor == plan->events.size()) {
      g_plan_reuses.fetch_add(1, std::memory_order_relaxed);
    } else {
      retire_plan(*tp, plan);
      g_replans.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::uint64_t MemoryPlanner::fingerprint(
    std::initializer_list<std::uint64_t> dims) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (std::uint64_t d : dims) {
    for (int b = 0; b < 8; ++b) {
      h ^= (d >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool MemoryPlanner::enabled() {
  return g_plan_enabled.load(std::memory_order_relaxed);
}

void MemoryPlanner::set_enabled(bool on) {
  g_plan_enabled.store(on, std::memory_order_relaxed);
}

MemoryPlanner::Stats MemoryPlanner::stats() {
  Stats s;
  s.arena_bytes = g_arena_bytes.load(std::memory_order_relaxed);
  s.plan_reuses = g_plan_reuses.load(std::memory_order_relaxed);
  s.replans = g_replans.load(std::memory_order_relaxed);
  return s;
}

void MemoryPlanner::reset_stats() {
  g_plan_reuses.store(0, std::memory_order_relaxed);
  g_replans.store(0, std::memory_order_relaxed);
}

void MemoryPlanner::clear_thread_plans() {
  ThreadPlans* tp = local_plans();
  if (tp == nullptr || tp->phase != Phase::kIdle) return;
  for (Plan* plan : tp->plans) tp->graveyard.emplace_back(plan, 0);
  tp->plans.clear();
  for (std::size_t i = 0; i < tp->graveyard.size();) {
    Plan* plan = tp->graveyard[i].first;
    const bool idle =
        plan->arena == nullptr || plan->arena_slot < 0 ||
        g_arenas[plan->arena_slot].outstanding.load(
            std::memory_order_acquire) == 0;
    if (idle) {
      destroy_plan(plan);
      tp->graveyard.erase(tp->graveyard.begin() +
                          static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

namespace plan_detail {

void* plan_acquire(std::size_t bytes) {
  if (t_plans_dead) return nullptr;
  ThreadPlans* tp = local_plans();
  if (tp == nullptr || tp->phase != Phase::kReplay || tp->diverged) {
    return nullptr;
  }
  Plan* plan = tp->cur;
  if (tp->cursor >= plan->events.size()) {
    diverge(*tp);
    return nullptr;
  }
  const Event& ev = plan->events[tp->cursor];
  if (ev.kind == Event::kRel || ev.bytes != bytes) {
    diverge(*tp);
    return nullptr;
  }
  ++tp->cursor;
  if (ev.kind == Event::kAcqPool) return nullptr;
  char* p = plan->arena + ev.offset;
  plan_unpoison(p, bytes);
  g_arenas[plan->arena_slot].outstanding.fetch_add(
      1, std::memory_order_acq_rel);
  return p;
}

void plan_record(void* p, std::size_t bytes) {
  if (t_plans_dead || p == nullptr) return;
  ThreadPlans* tp = local_plans();
  if (tp == nullptr || tp->phase != Phase::kRecord || tp->rec.overflowed) {
    return;
  }
  Recording& rec = tp->rec;
  if (rec.events.size() >= kMaxEvents) {
    rec.overflowed = true;
    return;
  }
  const std::size_t slot = rec.slots.size();
  rec.slots.push_back({bytes, rec.events.size(), false});
  rec.events.push_back({true, slot});
  rec.open[p] = slot;
}

bool plan_release(void* p, std::size_t bytes) {
  // Arena-range pointers must never reach the pool or the system
  // allocator, replaying or not (a plan that died mid-step leaves its
  // pointers draining through here).
  if (g_num_arenas.load(std::memory_order_relaxed) > 0) {
    const int ar = find_arena(p);
    if (ar >= 0) {
      ThreadPlans* tp = t_plans_dead ? nullptr : local_plans();
      if (tp != nullptr && tp->phase == Phase::kReplay && !tp->diverged &&
          tp->cur->arena_slot == ar) {
        Plan* plan = tp->cur;
        if (tp->cursor < plan->events.size()) {
          const Event& ev = plan->events[tp->cursor];
          if (ev.kind == Event::kRel && ev.bytes == bytes &&
              plan->arena + ev.offset == p) {
            ++tp->cursor;
            plan_poison(p, bytes);
            g_arenas[ar].outstanding.fetch_sub(1, std::memory_order_acq_rel);
            return true;
          }
        }
        diverge(*tp);
      }
      plan_poison(p, bytes);
      g_arenas[ar].outstanding.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  if (t_plans_dead || p == nullptr) return false;
  ThreadPlans* tp = local_plans();
  if (tp == nullptr || tp->phase != Phase::kRecord || tp->rec.overflowed) {
    return false;
  }
  Recording& rec = tp->rec;
  auto it = rec.open.find(p);
  if (it == rec.open.end()) return false;  // foreign: invisible to the plan
  const std::size_t slot = it->second;
  rec.open.erase(it);
  if (rec.slots[slot].bytes != bytes ||
      rec.events.size() >= kMaxEvents) {
    rec.overflowed = true;
    return false;
  }
  rec.slots[slot].released = true;
  rec.events.push_back({false, slot});
  return false;
}

}  // namespace plan_detail
}  // namespace trkx
