#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace trkx {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    TRKX_CHECK_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                              float lo, float hi) {
  Matrix m(rows, cols);
  for (float& x : m.data_) x = rng.uniform(lo, hi);
  return m;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols, Rng& rng,
                             float mean, float stddev) {
  Matrix m(rows, cols);
  for (float& x : m.data_) x = static_cast<float>(rng.normal(mean, stddev));
  return m;
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols, float fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

float Matrix::abs_max() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Matrix::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

bool Matrix::all_finite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](float x) { return std::isfinite(x); });
}

std::string Matrix::shape_str() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

}  // namespace trkx
