#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace trkx {

/// Dense kernels used by the autograd layer and the GNN.
///
/// All kernels validate shapes with TRKX_CHECK and parallelise the outer
/// loop with OpenMP. They allocate their outputs; in-place variants are
/// provided where backpropagation needs accumulation.

/// C = A · B
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A · Bᵀ
Matrix matmul_nt(const Matrix& a, const Matrix& b);
/// C = Aᵀ · B
Matrix matmul_tn(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& a);

Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
Matrix scale(const Matrix& a, float s);
/// a += b
void add_inplace(Matrix& a, const Matrix& b);
/// a += s * b
void axpy_inplace(Matrix& a, float s, const Matrix& b);

/// Broadcast-add a 1×c row vector to every row of a (returns new matrix).
Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
/// 1×c column sums (the gradient of a row broadcast).
Matrix colwise_sum(const Matrix& a);
/// r×1 row sums.
Matrix rowwise_sum(const Matrix& a);

/// Horizontally concatenate blocks: [A B C ...]. All must share rows().
Matrix concat_cols(const std::vector<const Matrix*>& blocks);
/// Vertically stack blocks. All must share cols().
Matrix concat_rows(const std::vector<const Matrix*>& blocks);
/// Columns [start, start+len) of a.
Matrix slice_cols(const Matrix& a, std::size_t start, std::size_t len);
/// Rows [start, start+len) of a.
Matrix slice_rows(const Matrix& a, std::size_t start, std::size_t len);

/// out[i, :] = x[index[i], :]. Every index must be < x.rows().
Matrix row_gather(const Matrix& x, const std::vector<std::uint32_t>& index);
/// dst[index[i], :] += src[i, :]. Every index must be < dst.rows().
void row_scatter_add(Matrix& dst, const std::vector<std::uint32_t>& index,
                     const Matrix& src);
/// out (num_segments × cols): out[index[i], :] += y[i, :].
/// This is the GNN aggregation primitive (REDUCTION in Algorithm 1).
Matrix segment_sum(const Matrix& y, const std::vector<std::uint32_t>& index,
                   std::size_t num_segments);

/// max |a - b| over all elements; shapes must match.
/// True iff every element is finite (no NaN or ±Inf). Used by the
/// TRKX_CHECK_NUMERICS debug mode in the tape and gradient sync.
bool all_finite(const Matrix& a);

float max_abs_diff(const Matrix& a, const Matrix& b);
bool allclose(const Matrix& a, const Matrix& b, float atol = 1e-5f,
              float rtol = 1e-4f);

/// Elementwise map (out[i] = fn(a[i])).
template <typename Fn>
Matrix apply(const Matrix& a, Fn&& fn) {
  Matrix out(a.rows(), a.cols());
  const float* src = a.data();
  float* dst = out.data();
  const std::size_t n = a.size();
#pragma omp parallel for schedule(static) default(none) \
    shared(dst, src, fn) firstprivate(n)
  for (std::size_t i = 0; i < n; ++i) dst[i] = fn(src[i]);
  return out;
}

/// Elementwise binary map (out[i] = fn(a[i], b[i])); shapes must match.
template <typename Fn>
Matrix apply2(const Matrix& a, const Matrix& b, Fn&& fn) {
  TRKX_CHECK_MSG(a.same_shape(b), "apply2 shape mismatch " << a.shape_str()
                                                           << " vs "
                                                           << b.shape_str());
  Matrix out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  const std::size_t n = a.size();
#pragma omp parallel for schedule(static) default(none) \
    shared(dst, pa, pb, fn) firstprivate(n)
  for (std::size_t i = 0; i < n; ++i) dst[i] = fn(pa[i], pb[i]);
  return out;
}

}  // namespace trkx
